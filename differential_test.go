package topocon_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"topocon"
)

// The differential harness cross-validates the two independent semantics
// the repo implements for every workload: the topological analysis
// (prefix-space decomposition, Theorems 6.6/6.7) and the operational
// lock-step simulator (package sim). For a solvable verdict, the extracted
// decision rule is executed by genuine message-passing full-information
// processes on exhaustively enumerated admissible runs at small horizons
// and on seeded randomized runs at larger ones, and (T), (A), (V) of
// Definition 5.1 must hold wherever the adversary's obligations make them
// due. For an impossible verdict, the bivalence witness is checked
// semantically: its anchor chain must really connect differently-valent
// runs through non-empty agreement sets, and the prefix space must keep a
// mixed component — two decision values reachable inside one
// indistinguishability class — at every analysed resolution.
//
// The harness walks every concrete corpus scenario AND every cell of every
// sweep template in scenarios/, so each new template's grid gets
// differential coverage without any test changes.

// diffTraceBudget caps the number of exhaustively executed traces per
// workload; the enumeration horizon grows while the next horizon fits.
const diffTraceBudget = 20_000

// diffRandomIters is the number of seeded random runs per workload.
const diffRandomIters = 40

// diffWorkload is one unit of differential coverage.
type diffWorkload struct {
	name   string
	sc     *topocon.Scenario
	pinned topocon.Verdict // 0 when the spec does not pin one
}

// diffWorkloads gathers the corpus: concrete scenarios plus expanded
// template cells.
func diffWorkloads(t *testing.T) []diffWorkload {
	t.Helper()
	files, templates := corpusFiles(t)
	var out []diffWorkload
	for _, file := range files {
		s, err := topocon.LoadScenario(file)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, diffWorkload{name: filepath.Base(file), sc: s, pinned: s.Expect})
	}
	for _, file := range templates {
		tpl, err := topocon.LoadTemplate(file)
		if err != nil {
			t.Fatal(err)
		}
		cells, err := tpl.Expand()
		if err != nil {
			t.Fatal(err)
		}
		for _, cell := range cells {
			out = append(out, diffWorkload{name: cell.Scenario.Name, sc: cell.Scenario, pinned: cell.Scenario.Expect})
		}
	}
	return out
}

// TestDifferentialSimVsTopology is the harness entry point: every solvable
// workload is executed, every impossible one is checked for persistent
// bivalence. Workloads pinned unknown are skipped — an unknown verdict
// extracts no executable algorithm and certifies nothing.
func TestDifferentialSimVsTopology(t *testing.T) {
	solvableCovered := 0
	for _, w := range diffWorkloads(t) {
		w := w
		if w.pinned == topocon.VerdictUnknown {
			continue
		}
		t.Run(w.name, func(t *testing.T) {
			an, err := topocon.NewAnalyzer(w.sc.Adversary, topocon.WithCheckOptions(w.sc.Options))
			if err != nil {
				t.Fatal(err)
			}
			res, err := an.Check(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if w.pinned != 0 && res.Verdict != w.pinned {
				t.Fatalf("verdict %v contradicts pinned %v", res.Verdict, w.pinned)
			}
			switch res.Verdict {
			case topocon.VerdictSolvable:
				differentialSolvable(t, w.sc.Adversary, res, an.Options())
				solvableCovered++
			case topocon.VerdictImpossible:
				differentialImpossible(t, w.sc.Adversary, res, an.Options())
			}
		})
	}
	if solvableCovered == 0 {
		t.Fatal("differential harness covered no solvable workload")
	}
}

// exhaustiveHorizon picks the deepest horizon whose full trace count
// (admissible prefixes × input assignments) fits the budget, never below
// atLeast and never above maxHorizon.
func exhaustiveHorizon(adv topocon.Adversary, domain, atLeast, maxHorizon int) int {
	inputs := 1
	for p := 0; p < adv.N(); p++ {
		inputs *= domain
	}
	h := atLeast
	if h < 1 {
		h = 1
	}
	for h < maxHorizon && topocon.CountAdmissiblePrefixes(adv, h+1)*inputs <= diffTraceBudget {
		h++
	}
	return h
}

// doneAtOf walks the adversary automaton along a run's graph sequence and
// returns the earliest round at which the liveness obligations were
// discharged, or -1.
func doneAtOf(adv topocon.Adversary, run topocon.Run) int {
	s := adv.Start()
	for i := 0; i <= run.Rounds(); i++ {
		if adv.Done(s) {
			return i
		}
		if i < run.Rounds() {
			s = adv.Step(s, run.Graph(i+1))
		}
	}
	return -1
}

// differentialSolvable executes the extracted decision rule under the
// adversary and checks the consensus properties against the topological
// verdict, exhaustively and on seeded random runs.
func differentialSolvable(t *testing.T, adv topocon.Adversary, res *topocon.CheckResult, opts topocon.CheckOptions) {
	t.Helper()
	if res.Rule == nil {
		t.Fatal("solvable verdict without an extracted rule")
	}
	factory := topocon.NewFullInfo(res.Rule)
	compact := adv.Compact()

	// Exhaustive small-horizon enumeration. For compact adversaries the
	// decision map decides every process by the separation horizon, so
	// termination is due on every run at h ≥ SeparationHorizon. For
	// non-compact ones, termination is due once the obligations discharged
	// LatencySlack rounds before the horizon.
	atLeast := 1
	if compact {
		atLeast = res.SeparationHorizon
	}
	h := exhaustiveHorizon(adv, opts.InputDomain, atLeast, opts.MaxHorizon)
	if compact && h < res.SeparationHorizon {
		t.Fatalf("budget excludes the separation horizon %d", res.SeparationHorizon)
	}
	traces := 0
	topocon.ExhaustiveSim(adv, factory, opts.InputDomain, h,
		func(tr *topocon.Trace, pfx topocon.AdmissiblePrefix) bool {
			traces++
			requireTermination := compact ||
				(pfx.Done && pfx.DoneAt >= 0 && pfx.DoneAt <= h-opts.LatencySlack)
			for _, v := range topocon.CheckProperties(tr, requireTermination) {
				t.Errorf("exhaustive h=%d: %v", h, v)
			}
			return true
		})
	if traces == 0 {
		t.Fatalf("exhaustive enumeration at h=%d yielded no run", h)
	}

	// Seeded randomized runs beyond the exhaustive horizon.
	rng := rand.New(rand.NewSource(0x5eed))
	hr := h + 4
	for iter := 0; iter < diffRandomIters; iter++ {
		var run topocon.Run
		if compact {
			run = topocon.RandomRun(adv, rng, opts.InputDomain, hr)
		} else {
			var done bool
			run, done = topocon.RandomDoneRun(adv, rng, opts.InputDomain, hr, hr/2)
			if !done {
				continue // obligations stayed pending within the budget
			}
		}
		requireTermination := compact
		if !compact {
			doneAt := doneAtOf(adv, run)
			requireTermination = doneAt >= 0 && doneAt <= hr-opts.LatencySlack
		}
		tr := topocon.Execute(factory, run)
		for _, v := range topocon.CheckProperties(tr, requireTermination) {
			t.Errorf("random run %d: %v", iter, v)
		}
	}
}

// differentialImpossible checks an impossibility verdict semantically: the
// certificate's anchor chain really connects differently-valent input
// assignments through non-empty agreement sets, and the adversary's prefix
// space keeps a mixed component at every budgeted resolution — i.e. two
// decision values stay reachable within one indistinguishability class, so
// no algorithm can ever split them.
func differentialImpossible(t *testing.T, adv topocon.Adversary, res *topocon.CheckResult, opts topocon.CheckOptions) {
	t.Helper()
	if res.Certificate == nil {
		t.Fatal("impossible verdict without a certificate")
	}
	var inputs [][]int
	var word []uint64
	switch cert := res.Certificate.(type) {
	case *topocon.BivalenceCertificate:
		inputs, word = cert.InitialInputs, cert.InitialWord
	case *topocon.PumpCertificate:
		inputs, word = cert.AnchorInputs, cert.AnchorWord
		if cert.A == 0 || cert.B == 0 {
			t.Errorf("pump certificate with empty sustained agreement set: A=%b B=%b", cert.A, cert.B)
		}
		for i, a := range word {
			if a != cert.A && a != cert.B {
				t.Errorf("anchor word entry %d = %b is neither A nor B", i, a)
			}
		}
	default:
		t.Fatalf("unknown certificate type %T", res.Certificate)
	}
	if len(inputs) < 2 || len(word) != len(inputs)-1 {
		t.Fatalf("malformed anchor chain: %d inputs, %d word entries", len(inputs), len(word))
	}
	v0, ok0 := valentValue(inputs[0])
	vk, okk := valentValue(inputs[len(inputs)-1])
	if !ok0 || !okk || v0 == vk {
		t.Errorf("anchor endpoints not differently valent: %v .. %v", inputs[0], inputs[len(inputs)-1])
	}
	for i, a := range word {
		if a == 0 {
			t.Errorf("anchor edge %d has empty agreement set", i)
			continue
		}
		// At horizon 0 the agreement set is the equal-coordinate set.
		if eq := equalCoords(inputs[i], inputs[i+1]); a&^eq != 0 {
			t.Errorf("anchor edge %d: agreement set %b not justified by inputs %v / %v", i, a, inputs[i], inputs[i+1])
		}
	}

	// Topological persistence: a mixed component at every budgeted horizon.
	hMax := exhaustiveHorizon(adv, opts.InputDomain, 1, opts.MaxHorizon)
	for h := 1; h <= hMax; h++ {
		space, err := topocon.BuildSpace(adv, opts.InputDomain, h, 0)
		if err != nil {
			t.Fatal(err)
		}
		d := topocon.Decompose(space)
		if len(d.MixedComponents()) == 0 {
			t.Errorf("horizon %d separates the space — contradicts the impossibility certificate", h)
		}
	}
}

// valentValue reports whether all coordinates agree, and on what value.
func valentValue(x []int) (int, bool) {
	for _, v := range x[1:] {
		if v != x[0] {
			return 0, false
		}
	}
	return x[0], true
}

// equalCoords is the bitmask of coordinates on which x and y agree.
func equalCoords(x, y []int) uint64 {
	var mask uint64
	for i := range x {
		if x[i] == y[i] {
			mask |= 1 << uint(i)
		}
	}
	return mask
}
