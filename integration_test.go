package topocon_test

// End-to-end integration sweeps: random n=3 oblivious adversaries flow
// through the complete pipeline — checker, certificate or witness, compiled
// universal algorithm, message-passing simulation — with every stage's
// output validated against the others. This is the repository's
// self-consistency proof at scale.

import (
	"math/rand"
	"testing"

	"topocon"
	"topocon/internal/ma"
)

// TestPipelineRandomObliviousN3 sweeps random n=3 oblivious graph subsets.
func TestPipelineRandomObliviousN3(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	rng := rand.New(rand.NewSource(2019))
	var graphs []topocon.Graph
	topocon.EnumerateGraphs(3, func(g topocon.Graph) bool {
		graphs = append(graphs, g)
		return true
	})
	for iter := 0; iter < 25; iter++ {
		// 1-4 random graphs.
		count := 1 + rng.Intn(4)
		set := make([]topocon.Graph, 0, count)
		seen := map[uint64]bool{}
		for len(set) < count {
			i := rng.Intn(len(graphs))
			if seen[uint64(i)] {
				continue
			}
			seen[uint64(i)] = true
			set = append(set, graphs[i])
		}
		adv, err := topocon.NewOblivious("", set)
		if err != nil {
			t.Fatal(err)
		}
		res, err := topocon.CheckConsensus(adv, topocon.CheckOptions{MaxHorizon: 3})
		if err != nil {
			t.Fatal(err)
		}
		switch res.Verdict {
		case topocon.VerdictSolvable:
			validateSolvable(t, adv, res)
		case topocon.VerdictImpossible:
			validateImpossible(t, adv, res)
		case topocon.VerdictUnknown:
			// Allowed: certificate search is incomplete; mixing must
			// persist at the final horizon, otherwise it would have been
			// classified solvable.
			if res.MixedComponents == 0 {
				t.Errorf("%s: unknown verdict without mixed components", adv.Name())
			}
		}
	}
}

func validateSolvable(t *testing.T, adv *ma.Oblivious, res *topocon.CheckResult) {
	t.Helper()
	if res.Map == nil || res.Rule == nil {
		t.Errorf("%s: solvable without compiled algorithm", adv.Name())
		return
	}
	// Theorem 6.6 cross-check: broadcastability must also hold at some
	// horizon at or after separation.
	if res.BroadcastHorizon < 0 {
		t.Errorf("%s: solvable but no broadcastability horizon (Theorem 6.6)", adv.Name())
	}
	// Exhaustive simulation at the separation horizon: every run must
	// satisfy (T),(A),(V) and strong validity, deciding by the witness.
	factory := topocon.NewFullInfo(res.Rule)
	runs := 0
	topocon.ExhaustiveSim(adv, factory, 2, res.SeparationHorizon,
		func(tr *topocon.Trace, _ ma.Prefix) bool {
			runs++
			for _, v := range topocon.CheckProperties(tr, true) {
				t.Errorf("%s: %v", adv.Name(), v)
			}
			if last := tr.LastDecisionRound(); last > res.SeparationHorizon {
				t.Errorf("%s: decision round %d beyond witness %d",
					adv.Name(), last, res.SeparationHorizon)
			}
			return true
		})
	if runs == 0 {
		t.Errorf("%s: no runs simulated", adv.Name())
	}
}

func validateImpossible(t *testing.T, adv *ma.Oblivious, res *topocon.CheckResult) {
	t.Helper()
	if res.Certificate == nil {
		t.Errorf("%s: impossible without certificate", adv.Name())
	}
	// An impossibility certificate must be accompanied by persistent
	// mixing (the space cannot have separated).
	if res.SeparationHorizon >= 0 {
		t.Errorf("%s: impossible yet separated at %d", adv.Name(), res.SeparationHorizon)
	}
	if res.MixedComponents == 0 {
		t.Errorf("%s: impossible without mixed components at horizon %d", adv.Name(), res.Horizon)
	}
}

// TestPipelineLassoVsChecker cross-validates the exact lasso analysis with
// the prefix-space checker on finite adversaries expressed both ways.
func TestPipelineLassoVsChecker(t *testing.T) {
	cases := [][]topocon.GraphWord{
		{topocon.RepeatWord(topocon.LeftGraph)},
		{topocon.RepeatWord(topocon.RightGraph)},
		{topocon.RepeatWord(topocon.NeitherGraph)},
		{topocon.RepeatWord(topocon.LeftGraph), topocon.RepeatWord(topocon.RightGraph)},
		{topocon.RepeatWord(topocon.BothGraph), topocon.RepeatWord(topocon.NeitherGraph)},
	}
	for _, words := range cases {
		exact, err := topocon.AnalyzeFinite(words, 2)
		if err != nil {
			t.Fatal(err)
		}
		adv, err := topocon.NewLassoSet("", words)
		if err != nil {
			t.Fatal(err)
		}
		res, err := topocon.CheckConsensus(adv, topocon.CheckOptions{MaxHorizon: 6})
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case exact.Solvable && res.Verdict != topocon.VerdictSolvable:
			t.Errorf("%s: exact says solvable, checker says %v", adv.Name(), res.Verdict)
		case !exact.Solvable && res.Verdict == topocon.VerdictSolvable:
			t.Errorf("%s: exact says unsolvable, checker says solvable", adv.Name())
		}
	}
}
