package topocon_test

import (
	"context"
	"path/filepath"
	"testing"

	"topocon"
)

// fingerprintDepth is the exploration depth under which the corpus
// fingerprints are compared; deep enough to separate every entry's
// behaviour.
const fingerprintDepth = 6

// TestScenarioCorpus walks every spec in scenarios/ through a full
// Analyzer session: the adversary must satisfy the automaton contract, the
// verdict must match the spec's pinned expectation, and the behavioural
// fingerprint must be stable across independent loads and distinct across
// the corpus.
func TestScenarioCorpus(t *testing.T) {
	files, err := filepath.Glob("scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 8 {
		t.Fatalf("scenario corpus has %d specs, want >= 8", len(files))
	}
	type entry struct {
		file        string
		fingerprint string
	}
	var entries []entry
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			s, err := topocon.LoadScenario(file)
			if err != nil {
				t.Fatal(err)
			}
			if s.Expect == 0 {
				t.Fatalf("%s: corpus specs must pin an expected verdict", file)
			}
			if err := topocon.ValidateAdversary(s.Adversary, 5); err != nil {
				t.Fatalf("contract violation: %v", err)
			}
			// Fingerprints are stable across independent constructions of
			// the same spec.
			again, err := topocon.LoadScenario(file)
			if err != nil {
				t.Fatal(err)
			}
			fp := s.Fingerprint(fingerprintDepth)
			if fp2 := again.Fingerprint(fingerprintDepth); fp2 != fp {
				t.Errorf("fingerprint not stable across loads: %s vs %s", fp, fp2)
			}
			entries = append(entries, entry{file: file, fingerprint: fp})

			an, err := topocon.NewAnalyzer(s.Adversary, topocon.WithCheckOptions(s.Options))
			if err != nil {
				t.Fatal(err)
			}
			res, err := an.Check(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != s.Expect {
				t.Errorf("verdict = %v, want %v", res.Verdict, s.Expect)
			}
		})
	}
	// Every corpus entry denotes a behaviourally distinct adversary.
	seen := map[string]string{}
	for _, e := range entries {
		if prev, clash := seen[e.fingerprint]; clash {
			t.Errorf("fingerprint collision between %s and %s", prev, e.file)
		}
		seen[e.fingerprint] = e.file
	}
}
