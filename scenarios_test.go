package topocon_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"topocon"
)

// fingerprintDepth is the exploration depth under which the corpus
// fingerprints are compared; deep enough to separate every entry's
// behaviour.
const fingerprintDepth = 6

// corpusFiles returns every file in scenarios/, partitioned into concrete
// scenario documents and parameterized templates. It fails the test on
// anything it cannot classify — a stray file in the corpus directory must
// never be skipped silently, or a typo'd spec would drop out of coverage
// without anybody noticing.
func corpusFiles(t *testing.T) (scenarios, templates []string) {
	t.Helper()
	entries, err := os.ReadDir("scenarios")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("scenarios/ is empty")
	}
	for _, e := range entries {
		path := filepath.Join("scenarios", e.Name())
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			t.Fatalf("%s: corpus entries must be .json documents; this file would not be loaded", path)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if topocon.IsTemplateDoc(data) {
			templates = append(templates, path)
		} else {
			scenarios = append(scenarios, path)
		}
	}
	return scenarios, templates
}

// TestScenarioCorpus walks every spec in scenarios/ through a full
// Analyzer session: the adversary must satisfy the automaton contract, the
// verdict must match the spec's pinned expectation, and the behavioural
// fingerprint must be stable across independent loads and distinct across
// the corpus. Every directory entry must load as a scenario or template —
// an unloadable file fails the test rather than passing vacuously.
func TestScenarioCorpus(t *testing.T) {
	files, templates := corpusFiles(t)
	if len(files) < 8 {
		t.Fatalf("scenario corpus has %d concrete specs, want >= 8", len(files))
	}
	if len(templates) < 2 {
		t.Fatalf("scenario corpus has %d sweep templates, want >= 2", len(templates))
	}
	type entry struct {
		file        string
		fingerprint string
	}
	var entries []entry
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			s, err := topocon.LoadScenario(file)
			if err != nil {
				t.Fatal(err)
			}
			if s.Expect == 0 {
				t.Fatalf("%s: corpus specs must pin an expected verdict", file)
			}
			if err := topocon.ValidateAdversary(s.Adversary, 5); err != nil {
				t.Fatalf("contract violation: %v", err)
			}
			// Fingerprints are stable across independent constructions of
			// the same spec.
			again, err := topocon.LoadScenario(file)
			if err != nil {
				t.Fatal(err)
			}
			fp := s.Fingerprint(fingerprintDepth)
			if fp2 := again.Fingerprint(fingerprintDepth); fp2 != fp {
				t.Errorf("fingerprint not stable across loads: %s vs %s", fp, fp2)
			}
			entries = append(entries, entry{file: file, fingerprint: fp})

			an, err := topocon.NewAnalyzer(s.Adversary, topocon.WithCheckOptions(s.Options))
			if err != nil {
				t.Fatal(err)
			}
			res, err := an.Check(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != s.Expect {
				t.Errorf("verdict = %v, want %v", res.Verdict, s.Expect)
			}
		})
	}
	// Every concrete corpus entry denotes a behaviourally distinct
	// adversary. (Template grids are exempt: saturating parameter families
	// produce intentionally isomorphic cells — that is what the sweep
	// engine's verdict cache exists for.)
	seen := map[string]string{}
	for _, e := range entries {
		if prev, clash := seen[e.fingerprint]; clash {
			t.Errorf("fingerprint collision between %s and %s", prev, e.file)
		}
		seen[e.fingerprint] = e.file
	}
}

// TestScenarioCorpusTemplates walks every sweep template in scenarios/
// through expansion and a full sweep run: templates must expand to at
// least two cells (a one-cell template is a concrete scenario in
// disguise), every cell's adversary must satisfy the automaton contract,
// and a pinned template verdict must hold across the whole grid.
func TestScenarioCorpusTemplates(t *testing.T) {
	_, templates := corpusFiles(t)
	for _, file := range templates {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			tpl, err := topocon.LoadTemplate(file)
			if err != nil {
				t.Fatal(err)
			}
			cells, err := tpl.Expand()
			if err != nil {
				t.Fatal(err)
			}
			if len(cells) < 2 {
				t.Fatalf("template expands to %d cells, want >= 2 (inline a concrete scenario instead)", len(cells))
			}
			cellNames := map[string]bool{}
			for _, cell := range cells {
				if cellNames[cell.Scenario.Name] {
					t.Fatalf("duplicate cell name %q", cell.Scenario.Name)
				}
				cellNames[cell.Scenario.Name] = true
				if err := topocon.ValidateAdversary(cell.Scenario.Adversary, 4); err != nil {
					t.Fatalf("cell %s: contract violation: %v", cell.Scenario.Name, err)
				}
			}
			report, err := topocon.Sweep(context.Background(), tpl, topocon.SweepConfig{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range report.Cells {
				if c.Status != topocon.SweepStatusDone {
					t.Errorf("cell %s: status %s (%s)", c.Name, c.Status, c.Err)
				}
				if c.Match != nil && !*c.Match {
					t.Errorf("cell %s: verdict %s contradicts pinned %s", c.Name, c.Verdict, c.Expect)
				}
			}
			if report.Summary.Done != len(cells) {
				t.Errorf("sweep finished %d of %d cells", report.Summary.Done, len(cells))
			}
		})
	}
}
