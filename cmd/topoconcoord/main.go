// Command topoconcoord runs one template sweep across a fleet of
// topoconsvc workers: it expands the grid locally, dispatches each cell
// to a worker's claim endpoint (POST /v1/cells/{key}/claim), survives
// worker crashes by letting peers steal expired leases and adopt the dead
// worker's checkpoints, and writes the merged report — cells in grid
// order, as if one process had run the sweep.
//
//	topoconcoord -workers http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	    -lease-ttl 2s scenarios/sweep-lossbound-n2.json
//
// The merged report JSON goes to stdout (or -out); dispatch statistics go
// to stderr. Exit status: 0 on success, 1 when the run failed, any cell
// ended in error (unless -allow-errors), or fewer than -min-steals cells
// were stolen (the chaos-test assertion), 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"topocon/internal/coord"
	"topocon/internal/scenario"
	"topocon/internal/sweep"
)

func main() {
	var (
		workers     = flag.String("workers", "", "comma-separated worker base URLs (required)")
		leaseTTL    = flag.Duration("lease-ttl", 30*time.Second, "per-cell lease duration; dead workers' cells become stealable after this long")
		maxAttempts = flag.Int("max-attempts", 4, "per-cell circuit breaker: failed dispatches before the cell is recorded as a terminal error")
		dispatchers = flag.Int("dispatchers", 0, "cells in flight at once (0: two per worker)")
		timeout     = flag.Duration("timeout", 0, "whole-run wall-time budget (0: unbounded)")
		out         = flag.String("out", "", "write the merged report JSON here instead of stdout")
		table       = flag.Bool("table", false, "print the human-readable table to stderr as well")
		normalize   = flag.Bool("normalize", false, "zero timing fields in the report (for golden comparisons)")
		allowErrors = flag.Bool("allow-errors", false, "exit 0 even when cells ended in error")
		minSteals   = flag.Int("min-steals", 0, "fail unless at least this many cells were stolen from dead workers (chaos-test assertion)")
	)
	flag.Parse()
	if *workers == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: topoconcoord -workers URL[,URL...] [flags] template.json")
		flag.Usage()
		os.Exit(2)
	}
	fleet := strings.Split(*workers, ",")
	for i := range fleet {
		fleet[i] = strings.TrimRight(strings.TrimSpace(fleet[i]), "/")
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatalf("topoconcoord: %v", err)
	}
	if !scenario.IsTemplate(data) {
		log.Fatalf("topoconcoord: %s is not a template (no params block); the coordinator sweeps grids", flag.Arg(0))
	}
	tpl, err := scenario.ParseTemplate(data)
	if err != nil {
		log.Fatalf("topoconcoord: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	log.Printf("topoconcoord: sweeping %s (%d cells) across %d workers", tpl.Name, tpl.CellCount(), len(fleet))
	rep, stats, err := coord.Run(ctx, tpl, coord.Config{
		Workers:     fleet,
		LeaseTTL:    *leaseTTL,
		MaxAttempts: *maxAttempts,
		Dispatchers: *dispatchers,
		OnCell: func(res sweep.CellResult) {
			suffix := ""
			if res.StolenFrom != "" {
				suffix = fmt.Sprintf(" (stolen from %s)", res.StolenFrom)
			}
			log.Printf("topoconcoord: cell %s: %s on %s attempt %d%s", res.Name, res.Status, res.Worker, res.Attempt, suffix)
		},
	})
	if err != nil {
		log.Fatalf("topoconcoord: %v", err)
	}
	if *normalize {
		rep.Normalize()
	}

	doc, err := rep.JSON()
	if err != nil {
		log.Fatalf("topoconcoord: encoding report: %v", err)
	}
	doc = append(doc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			log.Fatalf("topoconcoord: %v", err)
		}
	} else {
		os.Stdout.Write(doc)
	}
	if *table {
		fmt.Fprint(os.Stderr, rep.Table())
	}

	s := rep.Summary
	log.Printf("topoconcoord: done %d/%d cells (errors %d, cancelled %d); dispatched %d (%d retries), stole %d, breaker trips %d, dead workers %d",
		s.Done, s.Cells, s.Errors, s.Cancelled, stats.Dispatched, stats.Retries, stats.Steals, stats.BreakerTrips, stats.DeadWorkers)

	fail := false
	if s.Errors > 0 && !*allowErrors {
		log.Printf("topoconcoord: FAIL: %d cells ended in error", s.Errors)
		fail = true
	}
	if s.Cancelled > 0 {
		log.Printf("topoconcoord: FAIL: %d cells cancelled", s.Cancelled)
		fail = true
	}
	if s.Mismatches > 0 {
		log.Printf("topoconcoord: FAIL: %d pinned verdicts mismatched", s.Mismatches)
		fail = true
	}
	if stats.Steals < *minSteals {
		log.Printf("topoconcoord: FAIL: stole %d cells, want >= %d", stats.Steals, *minSteals)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}
