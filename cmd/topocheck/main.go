// Command topocheck analyses consensus solvability under a message
// adversary using the topological characterizations of Nowak, Schmid and
// Winkler (PODC 2019).
//
// Usage examples:
//
//	topocheck -preset lossy3
//	topocheck -preset lossy2 -horizon 6
//	topocheck -n 2 -graphs "2->1 | 1->2 | 1<->2"
//	topocheck -preset stable -n 2 -window 2 -horizon 6
//	topocheck -preset committed -deadline 3
//	topocheck -n 3 -graphs "1->2,2->3,3->1 | 1<->2,1<->3,2<->3"
//	topocheck -scenario scenarios/lossylink-rooted.json
//	topocheck -scenario scenarios/chaos-then-stable.json -validate
//	topocheck -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"topocon"
)

func main() {
	var (
		preset   = flag.String("preset", "", "adversary preset: lossy2, lossy3, unrestricted, stable, committed — or a built-in scenario name (see -list)")
		scen     = flag.String("scenario", "", "declarative scenario file (JSON); its check options apply unless overridden by explicit flags")
		list     = flag.Bool("list", false, "list the built-in scenarios and exit")
		validate = flag.Bool("validate", false, "with -scenario or -preset: build the adversary, check the automaton contract and print the fingerprint instead of analysing")
		n        = flag.Int("n", 2, "number of processes")
		graphs   = flag.String("graphs", "", "oblivious graph set, '|'-separated edge lists (1-based ids)")
		horizon  = flag.Int("horizon", 5, "maximum analysis horizon")
		domain   = flag.Int("domain", 2, "input domain size")
		window   = flag.Int("window", 1, "stability window for -preset stable")
		deadline = flag.Int("deadline", 2, "deadline for -preset committed")
		workers  = flag.Int("workers", 1, "worker-pool size for frontier expansion and decomposition")
		retain   = flag.Int("retain", 1, "prefix spaces kept alive besides the separation horizon's (bounds session memory); 0 retains every horizon")
		verbose  = flag.Bool("v", false, "print per-horizon decomposition statistics as the session refines")
	)
	flag.Parse()

	if *list {
		listScenarios()
		return
	}

	adv, opts, err := resolveWorkload(*scen, *preset, *n, *graphs, *window, *deadline, *horizon, *domain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(2)
	}
	if *validate {
		if err := validateWorkload(adv, opts.MaxHorizon); err != nil {
			fmt.Fprintln(os.Stderr, "topocheck:", err)
			os.Exit(1)
		}
		return
	}
	// Interrupting a long session (Ctrl-C) cancels the analysis cleanly at
	// the next frontier chunk instead of killing the process mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	anOpts := []topocon.AnalyzerOption{
		topocon.WithCheckOptions(opts),
		topocon.WithParallelism(*workers),
		topocon.WithRetainSpaces(*retain),
	}
	if *verbose {
		fmt.Println("horizon  runs  components  mixed  broadcastable    elapsed")
		anOpts = append(anOpts, topocon.WithProgress(func(r topocon.HorizonReport) {
			fmt.Printf("%7d  %4d  %10d  %5d  %13v  %9v\n",
				r.Horizon, r.Runs, r.Components, r.MixedComponents, r.Broadcastable, r.Elapsed)
		}))
	}
	an, err := topocon.NewAnalyzer(adv, anOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(2)
	}
	res, err := an.Check(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "topocheck: interrupted at horizon %d\n", an.Horizon())
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Println()
	}
	fmt.Print(res.Summary())
}

// resolveWorkload produces the adversary and checker options from either a
// scenario file, a built-in scenario name, or the classic preset/graph
// flags. Scenario check options are the base; explicit -horizon and
// -domain flags override them.
func resolveWorkload(scenPath, preset string, n int, graphSpec string, window, deadline, horizon, domain int) (topocon.Adversary, topocon.CheckOptions, error) {
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var sc *topocon.Scenario
	switch {
	case scenPath != "":
		var err error
		sc, err = topocon.LoadScenario(scenPath)
		if err != nil {
			return nil, topocon.CheckOptions{}, err
		}
	case preset != "":
		if builtin, ok := topocon.LookupScenario(preset); ok {
			sc = builtin
		}
	}
	if sc != nil {
		opts := sc.Options
		if explicit["horizon"] {
			opts.MaxHorizon = horizon
		}
		if explicit["domain"] {
			opts.InputDomain = domain
		}
		return sc.Adversary, opts, nil
	}

	adv, err := buildAdversary(preset, n, graphSpec, window, deadline)
	if err != nil {
		return nil, topocon.CheckOptions{}, err
	}
	return adv, topocon.CheckOptions{MaxHorizon: horizon, InputDomain: domain}, nil
}

// validateWorkload is the CI entry point behind -validate: it checks the
// adversary automaton contract to the analysis horizon and prints the
// behavioural fingerprint.
func validateWorkload(adv topocon.Adversary, horizon int) error {
	depth := horizon
	if depth <= 0 {
		depth = 5
	}
	if err := topocon.ValidateAdversary(adv, depth); err != nil {
		return err
	}
	fmt.Printf("ok        %s\nfingerprint(depth=%d): %s\n", adv.Name(), depth, topocon.Fingerprint(adv, depth))
	return nil
}

func listScenarios() {
	scenarios, err := topocon.ScenarioRegistry()
	if err != nil {
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(1)
	}
	fmt.Println("built-in scenarios (run with -preset <name>; files via -scenario <path>):")
	fmt.Println()
	for _, s := range scenarios {
		fmt.Printf("  %-22s %s\n", s.Name, s.Description)
	}
}

func buildAdversary(preset string, n int, graphSpec string, window, deadline int) (topocon.Adversary, error) {
	switch preset {
	case "lossy2":
		return topocon.LossyLink2(), nil
	case "lossy3":
		return topocon.LossyLink3(), nil
	case "unrestricted":
		return topocon.Unrestricted(n), nil
	case "stable":
		if n != 2 {
			return nil, fmt.Errorf("preset stable is wired for n=2 (chaos {<-,<->}, stable {->}); use the library for other shapes")
		}
		return topocon.NewEventuallyStable("",
			[]topocon.Graph{topocon.LeftGraph, topocon.BothGraph},
			[]topocon.Graph{topocon.RightGraph}, window)
	case "committed":
		if n != 2 {
			return nil, fmt.Errorf("preset committed is wired for n=2; use the library for other shapes")
		}
		return topocon.NewCommittedSuffix("",
			[]topocon.Graph{topocon.LeftGraph, topocon.RightGraph, topocon.BothGraph},
			[]topocon.Graph{topocon.LeftGraph, topocon.RightGraph}, deadline)
	case "":
		if graphSpec == "" {
			return nil, fmt.Errorf("provide -preset, -graphs or -scenario")
		}
		parts := strings.Split(graphSpec, "|")
		set := make([]topocon.Graph, 0, len(parts))
		for _, p := range parts {
			g, err := topocon.ParseGraph(n, p)
			if err != nil {
				return nil, err
			}
			set = append(set, g)
		}
		return topocon.NewOblivious("", set)
	default:
		return nil, fmt.Errorf("unknown preset %q (not a flag preset and not a built-in scenario; see -list)", preset)
	}
}
