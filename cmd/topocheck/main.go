// Command topocheck analyses consensus solvability under a message
// adversary using the topological characterizations of Nowak, Schmid and
// Winkler (PODC 2019).
//
// Usage examples:
//
//	topocheck -preset lossy3
//	topocheck -preset lossy2 -horizon 6
//	topocheck -n 2 -graphs "2->1 | 1->2 | 1<->2"
//	topocheck -preset stable -n 2 -window 2 -horizon 6
//	topocheck -preset committed -deadline 3
//	topocheck -n 3 -graphs "1->2,2->3,3->1 | 1<->2,1<->3,2<->3"
//	topocheck -scenario scenarios/lossylink-rooted.json
//	topocheck -scenario scenarios/chaos-then-stable.json -validate
//	topocheck -list
//
// Parameterized sweeps expand a template (a scenario document with a
// "params" block of integer ranges/lists and ${param} placeholders) into
// its concrete scenario grid and analyse the cells over a bounded worker
// pool, deduping behaviourally isomorphic cells through a
// fingerprint-keyed verdict cache:
//
//	topocheck -sweep scenarios/sweep-lossbound-n2.json
//	topocheck -sweep tpl.json -sweep-workers 8 -out report.json
//	topocheck -sweep tpl.json -sweep-timeout 30s
//	topocheck -sweep tpl.json -cache-dir ~/.cache/topocon/verdicts
//	topocheck -sweep tpl.json -validate
//
// The sweep prints a per-cell table (verdict, separation horizon, runs
// explored, cache hit/miss, wall time) plus summary statistics; -out
// additionally writes the structured JSON report. The exit status is 1
// when any cell errors or contradicts the template's pinned verdict.
//
// -cache-dir layers the in-memory verdict cache over a persistent
// content-addressed store (internal/store): verdicts computed by earlier
// runs — or by a topoconsvc daemon sharing the directory — are served
// from disk (the table's cache column shows "disk"), and newly computed
// ones are written back, so a scenario corpus accumulates one verdict
// per behavioural class across processes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"topocon"
)

func main() {
	var (
		preset       = flag.String("preset", "", "adversary preset: lossy2, lossy3, unrestricted, stable, committed — or a built-in scenario name (see -list)")
		scen         = flag.String("scenario", "", "declarative scenario file (JSON); its check options apply unless overridden by explicit flags")
		sweepPath    = flag.String("sweep", "", "parameterized template file (JSON with a params block): expand the grid and analyse every cell")
		sweepWorkers = flag.Int("sweep-workers", 1, "with -sweep: number of concurrently analysed cells")
		sweepTimeout = flag.Duration("sweep-timeout", 0, "with -sweep: per-cell analysis wall-time budget (0 = unbounded)")
		cacheDir     = flag.String("cache-dir", "", "with -sweep: persistent verdict store directory — verdicts read through it and computed ones are written back, so isomorphic cells are solved once across runs and processes (shared with topoconsvc)")
		out          = flag.String("out", "", "with -sweep: also write the structured JSON report to this file ('-' for stdout)")
		list         = flag.Bool("list", false, "list the built-in scenarios and exit")
		validate     = flag.Bool("validate", false, "with -scenario/-preset: check the automaton contract and print the fingerprint instead of analysing; with -sweep (or a -scenario path holding a template): do so for every expanded grid cell")
		n            = flag.Int("n", 2, "number of processes")
		graphs       = flag.String("graphs", "", "oblivious graph set, '|'-separated edge lists (1-based ids)")
		horizon      = flag.Int("horizon", 5, "maximum analysis horizon")
		domain       = flag.Int("domain", 2, "input domain size")
		window       = flag.Int("window", 1, "stability window for -preset stable")
		deadline     = flag.Int("deadline", 2, "deadline for -preset committed")
		workers      = flag.Int("workers", 1, "worker-pool size for frontier expansion and decomposition")
		retain       = flag.Int("retain", 1, "prefix spaces kept alive besides the separation horizon's (bounds session memory); 0 retains every horizon")
		verbose      = flag.Bool("v", false, "print per-horizon decomposition statistics as the session refines (with -sweep: per-cell progress lines)")
		ckptDir      = flag.String("checkpoint-dir", "", "checkpoint/resume directory: the session checkpoints there as it refines and a rerun resumes from the last completed horizon instead of starting over; with -sweep: per-cell checkpoints under it")
		ckptEvery    = flag.Int("checkpoint-every", 1, "with -checkpoint-dir: checkpoint cadence in horizons")
		hotBytes     = flag.Int64("pager-hot-bytes", 0, "with -checkpoint-dir: frontier hot-set budget in bytes — colder rounds spill to page files and fault back on demand (0 = unlimited)")
		noSymmetry   = flag.Bool("no-symmetry", false, "analyse the full prefix space instead of quotienting by the adversary's process automorphisms; verdicts are identical, only interned-run counts differ (differential testing)")
	)
	flag.Parse()

	if *list {
		listScenarios()
		return
	}
	ckpt := ckptFlags{dir: *ckptDir, every: *ckptEvery, hotBytes: *hotBytes}
	if *sweepPath != "" {
		runSweep(*sweepPath, *sweepWorkers, *sweepTimeout, *cacheDir, *out, *validate, *verbose, *noSymmetry, ckpt)
		return
	}
	// -scenario -validate accepts either document kind: a template file is
	// detected by its params block and validated cell by cell, so corpus
	// walkers (CI) need no file classification of their own.
	if *scen != "" && *validate {
		if data, err := os.ReadFile(*scen); err == nil && topocon.IsTemplateDoc(data) {
			runSweep(*scen, *sweepWorkers, *sweepTimeout, *cacheDir, *out, true, *verbose, *noSymmetry, ckpt)
			return
		}
	}

	adv, opts, err := resolveWorkload(*scen, *preset, *n, *graphs, *window, *deadline, *horizon, *domain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(2)
	}
	if *noSymmetry {
		opts.NoSymmetry = true
	}
	if *validate {
		if err := validateWorkload(adv, opts.MaxHorizon); err != nil {
			fmt.Fprintln(os.Stderr, "topocheck:", err)
			os.Exit(1)
		}
		return
	}
	// Interrupting a long session (Ctrl-C) cancels the analysis cleanly at
	// the next frontier chunk instead of killing the process mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if ckpt.dir != "" {
		runCheckpointed(ctx, adv, opts, ckpt, *workers, *verbose)
		return
	}

	anOpts := []topocon.AnalyzerOption{
		topocon.WithCheckOptions(opts),
		topocon.WithParallelism(*workers),
		topocon.WithRetainSpaces(*retain),
	}
	if *verbose {
		fmt.Println("horizon    runs  interned  components  mixed  broadcastable    elapsed")
		anOpts = append(anOpts, topocon.WithProgress(func(r topocon.HorizonReport) {
			fmt.Printf("%7d  %6d  %8d  %10d  %5d  %13v  %9v\n",
				r.Horizon, r.Runs, r.InternedRuns, r.Components, r.MixedComponents, r.Broadcastable, r.Elapsed)
		}))
	}
	an, err := topocon.NewAnalyzer(adv, anOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(2)
	}
	res, err := an.Check(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "topocheck: interrupted at horizon %d\n", an.Horizon())
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Println()
	}
	fmt.Print(res.Summary())
}

// ckptFlags bundles the checkpoint/paging flags shared by the session and
// sweep paths.
type ckptFlags struct {
	dir      string
	every    int
	hotBytes int64
}

// runCheckpointed drives one scenario to a verdict with checkpoint/resume:
// the session checkpoints into dir as it refines, an interrupted run saves
// its last completed horizon, and a rerun resumes there — re-extending
// nothing it already analysed. Exit status mirrors the plain path (130 on
// interrupt), plus 1 on hard checkpoint mismatches.
func runCheckpointed(ctx context.Context, adv topocon.Adversary, opts topocon.CheckOptions, ck ckptFlags, workers int, verbose bool) {
	cfg := topocon.CheckpointConfig{Dir: ck.dir, HotBytes: ck.hotBytes, Every: ck.every}
	if verbose {
		fmt.Println("horizon    runs  interned  components  mixed  broadcastable    elapsed")
		cfg.OnHorizon = func(r topocon.HorizonReport) {
			fmt.Printf("%7d  %6d  %8d  %10d  %5d  %13v  %9v\n",
				r.Horizon, r.Runs, r.InternedRuns, r.Components, r.MixedComponents, r.Broadcastable, r.Elapsed)
		}
	}
	res, info, err := topocon.RunCheckpointed(ctx, adv, cfg, opts, workers)
	if info.Resumed {
		fmt.Fprintf(os.Stderr, "topocheck: resumed at horizon %d from %s\n", info.ResumedAt, ck.dir)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "topocheck: interrupted; %d checkpoint(s) written to %s — rerun to resume\n",
				info.Written, ck.dir)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(1)
	}
	if info.SaveErr != nil {
		fmt.Fprintf(os.Stderr, "topocheck: warning: mid-run checkpointing failed: %v\n", info.SaveErr)
	}
	if verbose {
		fmt.Println()
		st := info.PagerStats
		fmt.Fprintf(os.Stderr, "paging: %d spilled / %d faulted, peak hot %d B; %d checkpoints written\n",
			st.PagesSpilled, st.PagesFaulted, st.PeakHotBytes, info.Written)
	}
	fmt.Print(res.Summary())
}

// runSweep drives a parameterized template through the sweep engine (or,
// with validate, through per-cell contract checking only). Exit status: 2
// on configuration errors, 1 when any cell errors or contradicts a pinned
// verdict, 130 on interrupt.
func runSweep(path string, workers int, timeout time.Duration, cacheDir, out string, validate, verbose, noSymmetry bool, ck ckptFlags) {
	tpl, err := topocon.LoadTemplate(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(2)
	}
	if validate {
		cells, err := tpl.Expand()
		if err != nil {
			fmt.Fprintln(os.Stderr, "topocheck:", err)
			os.Exit(1)
		}
		for _, cell := range cells {
			if err := validateWorkload(cell.Scenario.Adversary, cell.Scenario.Options.MaxHorizon); err != nil {
				fmt.Fprintf(os.Stderr, "topocheck: %s: %v\n", cell.Scenario.Name, err)
				os.Exit(1)
			}
		}
		fmt.Printf("template  %s: %d cells validated\n", tpl.Name, len(cells))
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := topocon.SweepConfig{
		Workers:         workers,
		CellTimeout:     timeout,
		CheckpointDir:   ck.dir,
		CheckpointEvery: ck.every,
		PagerHotBytes:   ck.hotBytes,
		NoSymmetry:      noSymmetry,
	}
	if cacheDir != "" {
		st, err := topocon.OpenVerdictStore(cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topocheck:", err)
			os.Exit(2)
		}
		cfg.Cache = topocon.NewTieredSweepCache(st)
	}
	if verbose {
		cfg.Progress = func(c topocon.SweepCellResult) {
			fmt.Fprintf(os.Stderr, "%-9s %s (%.1fms)\n", c.Status+":", c.Name, c.WallMillis)
		}
	}
	report, err := topocon.Sweep(ctx, tpl, cfg)
	if report == nil {
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(2)
	}
	fmt.Print(report.Table())
	if out != "" {
		data, jsonErr := report.JSON()
		if jsonErr != nil {
			fmt.Fprintln(os.Stderr, "topocheck:", jsonErr)
			os.Exit(1)
		}
		data = append(data, '\n')
		if out == "-" {
			os.Stdout.Write(data)
		} else if writeErr := os.WriteFile(out, data, 0o644); writeErr != nil {
			fmt.Fprintln(os.Stderr, "topocheck:", writeErr)
			os.Exit(1)
		}
	}
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "topocheck: interrupted with %d of %d cells done\n",
			report.Summary.Done, report.Summary.Cells)
		os.Exit(130)
	case err != nil:
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(1)
	case report.Summary.Errors > 0 || report.Summary.Mismatches > 0:
		fmt.Fprintf(os.Stderr, "topocheck: %d cell errors, %d verdict mismatches\n",
			report.Summary.Errors, report.Summary.Mismatches)
		os.Exit(1)
	}
}

// resolveWorkload produces the adversary and checker options from either a
// scenario file, a built-in scenario name, or the classic preset/graph
// flags. Scenario check options are the base; explicit -horizon and
// -domain flags override them.
func resolveWorkload(scenPath, preset string, n int, graphSpec string, window, deadline, horizon, domain int) (topocon.Adversary, topocon.CheckOptions, error) {
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var sc *topocon.Scenario
	switch {
	case scenPath != "":
		var err error
		sc, err = topocon.LoadScenario(scenPath)
		if err != nil {
			if data, rerr := os.ReadFile(scenPath); rerr == nil && topocon.IsTemplateDoc(data) {
				return nil, topocon.CheckOptions{}, fmt.Errorf("%s is a parameterized template; run it with -sweep", scenPath)
			}
			return nil, topocon.CheckOptions{}, err
		}
	case preset != "":
		if builtin, ok := topocon.LookupScenario(preset); ok {
			sc = builtin
		}
	}
	if sc != nil {
		opts := sc.Options
		if explicit["horizon"] {
			opts.MaxHorizon = horizon
		}
		if explicit["domain"] {
			opts.InputDomain = domain
		}
		return sc.Adversary, opts, nil
	}

	adv, err := buildAdversary(preset, n, graphSpec, window, deadline)
	if err != nil {
		return nil, topocon.CheckOptions{}, err
	}
	return adv, topocon.CheckOptions{MaxHorizon: horizon, InputDomain: domain}, nil
}

// validateWorkload is the CI entry point behind -validate: it checks the
// adversary automaton contract to the analysis horizon and prints the
// behavioural fingerprint.
func validateWorkload(adv topocon.Adversary, horizon int) error {
	depth := horizon
	if depth <= 0 {
		depth = 5
	}
	if err := topocon.ValidateAdversary(adv, depth); err != nil {
		return err
	}
	fmt.Printf("ok        %s\nfingerprint(depth=%d): %s\n", adv.Name(), depth, topocon.Fingerprint(adv, depth))
	return nil
}

func listScenarios() {
	scenarios, err := topocon.ScenarioRegistry()
	if err != nil {
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(1)
	}
	fmt.Println("built-in scenarios (run with -preset <name>; files via -scenario <path>):")
	fmt.Println()
	for _, s := range scenarios {
		fmt.Printf("  %-22s %s\n", s.Name, s.Description)
	}
}

func buildAdversary(preset string, n int, graphSpec string, window, deadline int) (topocon.Adversary, error) {
	switch preset {
	case "lossy2":
		return topocon.LossyLink2(), nil
	case "lossy3":
		return topocon.LossyLink3(), nil
	case "unrestricted":
		return topocon.Unrestricted(n), nil
	case "stable":
		if n != 2 {
			return nil, fmt.Errorf("preset stable is wired for n=2 (chaos {<-,<->}, stable {->}); use the library for other shapes")
		}
		return topocon.NewEventuallyStable("",
			[]topocon.Graph{topocon.LeftGraph, topocon.BothGraph},
			[]topocon.Graph{topocon.RightGraph}, window)
	case "committed":
		if n != 2 {
			return nil, fmt.Errorf("preset committed is wired for n=2; use the library for other shapes")
		}
		return topocon.NewCommittedSuffix("",
			[]topocon.Graph{topocon.LeftGraph, topocon.RightGraph, topocon.BothGraph},
			[]topocon.Graph{topocon.LeftGraph, topocon.RightGraph}, deadline)
	case "":
		if graphSpec == "" {
			return nil, fmt.Errorf("provide -preset, -graphs or -scenario")
		}
		parts := strings.Split(graphSpec, "|")
		set := make([]topocon.Graph, 0, len(parts))
		for _, p := range parts {
			g, err := topocon.ParseGraph(n, p)
			if err != nil {
				return nil, err
			}
			set = append(set, g)
		}
		return topocon.NewOblivious("", set)
	default:
		return nil, fmt.Errorf("unknown preset %q (not a flag preset and not a built-in scenario; see -list)", preset)
	}
}
