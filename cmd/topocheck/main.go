// Command topocheck analyses consensus solvability under a message
// adversary using the topological characterizations of Nowak, Schmid and
// Winkler (PODC 2019).
//
// Usage examples:
//
//	topocheck -preset lossy3
//	topocheck -preset lossy2 -horizon 6
//	topocheck -n 2 -graphs "2->1 | 1->2 | 1<->2"
//	topocheck -preset stable -n 2 -window 2 -horizon 6
//	topocheck -preset committed -deadline 3
//	topocheck -n 3 -graphs "1->2,2->3,3->1 | 1<->2,1<->3,2<->3"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"topocon"
)

func main() {
	var (
		preset   = flag.String("preset", "", "adversary preset: lossy2, lossy3, unrestricted, stable, committed")
		n        = flag.Int("n", 2, "number of processes")
		graphs   = flag.String("graphs", "", "oblivious graph set, '|'-separated edge lists (1-based ids)")
		horizon  = flag.Int("horizon", 5, "maximum analysis horizon")
		domain   = flag.Int("domain", 2, "input domain size")
		window   = flag.Int("window", 1, "stability window for -preset stable")
		deadline = flag.Int("deadline", 2, "deadline for -preset committed")
		workers  = flag.Int("workers", 1, "worker-pool size for frontier expansion and decomposition")
		verbose  = flag.Bool("v", false, "print per-horizon decomposition statistics as the session refines")
	)
	flag.Parse()

	adv, err := buildAdversary(*preset, *n, *graphs, *window, *deadline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(2)
	}
	// Interrupting a long session (Ctrl-C) cancels the analysis cleanly at
	// the next frontier chunk instead of killing the process mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []topocon.AnalyzerOption{
		topocon.WithInputDomain(*domain),
		topocon.WithMaxHorizon(*horizon),
		topocon.WithParallelism(*workers),
	}
	if *verbose {
		fmt.Println("horizon  runs  components  mixed  broadcastable    elapsed")
		opts = append(opts, topocon.WithProgress(func(r topocon.HorizonReport) {
			fmt.Printf("%7d  %4d  %10d  %5d  %13v  %9v\n",
				r.Horizon, r.Runs, r.Components, r.MixedComponents, r.Broadcastable, r.Elapsed)
		}))
	}
	an, err := topocon.NewAnalyzer(adv, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(2)
	}
	res, err := an.Check(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "topocheck: interrupted at horizon %d\n", an.Horizon())
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "topocheck:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Println()
	}
	fmt.Print(res.Summary())
}

func buildAdversary(preset string, n int, graphSpec string, window, deadline int) (topocon.Adversary, error) {
	switch preset {
	case "lossy2":
		return topocon.LossyLink2(), nil
	case "lossy3":
		return topocon.LossyLink3(), nil
	case "unrestricted":
		return topocon.Unrestricted(n), nil
	case "stable":
		if n != 2 {
			return nil, fmt.Errorf("preset stable is wired for n=2 (chaos {<-,<->}, stable {->}); use the library for other shapes")
		}
		return topocon.NewEventuallyStable("",
			[]topocon.Graph{topocon.LeftGraph, topocon.BothGraph},
			[]topocon.Graph{topocon.RightGraph}, window)
	case "committed":
		if n != 2 {
			return nil, fmt.Errorf("preset committed is wired for n=2; use the library for other shapes")
		}
		return topocon.NewCommittedSuffix("",
			[]topocon.Graph{topocon.LeftGraph, topocon.RightGraph, topocon.BothGraph},
			[]topocon.Graph{topocon.LeftGraph, topocon.RightGraph}, deadline)
	case "":
		if graphSpec == "" {
			return nil, fmt.Errorf("provide -preset or -graphs")
		}
		parts := strings.Split(graphSpec, "|")
		set := make([]topocon.Graph, 0, len(parts))
		for _, p := range parts {
			g, err := topocon.ParseGraph(n, p)
			if err != nil {
				return nil, err
			}
			set = append(set, g)
		}
		return topocon.NewOblivious("", set)
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
}
