package main

import (
	"strings"
	"testing"

	"topocon"
)

func TestBuildAdversaryPresets(t *testing.T) {
	tests := []struct {
		preset  string
		n       int
		graphs  string
		wantErr bool
	}{
		{"lossy2", 2, "", false},
		{"lossy3", 2, "", false},
		{"unrestricted", 2, "", false},
		{"stable", 2, "", false},
		{"committed", 2, "", false},
		{"stable", 3, "", true},
		{"committed", 3, "", true},
		{"bogus", 2, "", true},
		{"", 2, "", true},
		{"", 2, "1->2 | 2->1", false},
		{"", 2, "1->9", true},
	}
	for _, tt := range tests {
		adv, err := buildAdversary(tt.preset, tt.n, tt.graphs, 1, 2)
		if tt.wantErr {
			if err == nil {
				t.Errorf("preset=%q graphs=%q: want error, got %v", tt.preset, tt.graphs, adv)
			}
			continue
		}
		if err != nil {
			t.Errorf("preset=%q graphs=%q: %v", tt.preset, tt.graphs, err)
			continue
		}
		if adv.N() != tt.n {
			t.Errorf("preset=%q: N=%d, want %d", tt.preset, adv.N(), tt.n)
		}
	}
}

func TestResolveWorkloadScenario(t *testing.T) {
	// A built-in scenario name used as -preset resolves through the
	// registry and carries the spec's options.
	adv, opts, err := resolveWorkload("", "stable-w2", 2, "", 1, 2, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Compact() {
		t.Error("stable-w2 must resolve to the non-compact eventually-stable adversary")
	}
	if opts.MaxHorizon != 5 {
		t.Errorf("MaxHorizon = %d, want the spec's 5", opts.MaxHorizon)
	}
	// Classic presets that are not scenario names keep working.
	if _, _, err := resolveWorkload("", "stable", 2, "", 1, 2, 5, 2); err != nil {
		t.Fatal(err)
	}
	// A missing scenario file is a resolution error.
	if _, _, err := resolveWorkload("/no/such/scenario.json", "", 2, "", 1, 2, 5, 2); err == nil {
		t.Error("missing scenario file: want error")
	}
}

func TestValidateWorkload(t *testing.T) {
	if err := validateWorkload(topocon.LossyLink2(), 4); err != nil {
		t.Errorf("validateWorkload(lossy2) = %v", err)
	}
}

func TestSummaryRendering(t *testing.T) {
	res, err := topocon.CheckConsensus(topocon.LossyLink3(), topocon.CheckOptions{MaxHorizon: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	for _, want := range []string{"impossible", "certificate", "alternating pump"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary missing %q:\n%s", want, sum)
		}
	}
	res2, err := topocon.CheckConsensus(topocon.LossyLink2(), topocon.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res2.Summary(), "separation: horizon 1") {
		t.Errorf("Summary missing separation line:\n%s", res2.Summary())
	}
}
