// Command benchjson converts `go test -bench` output into a machine-readable
// JSON document, so the perf trajectory of the hot paths (extension,
// refinement, decomposition) can be tracked across PRs by tooling instead of
// eyeballs.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -o BENCH.json
//	benchjson -o BENCH.json bench-output.txt
//
// Input is read from the file arguments, or stdin when none are given. Lines
// that are not benchmark results (build noise, PASS/ok trailers) are ignored;
// context lines (goos/goarch/pkg/cpu) are captured into the header and
// attached to the results that follow them. Exits non-zero if no benchmark
// line was found — a smoke guard against silently-empty perf artifacts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path and
	// GOMAXPROCS suffix, e.g. "BenchmarkRefineVsDecompose/refine-8".
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in, from the preceding "pkg:"
	// context line (empty if none was seen).
	Pkg string `json:"pkg,omitempty"`
	// Iterations is b.N of the measured run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall-clock cost per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem was on.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Document is the emitted JSON artifact.
type Document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader
	if flag.NArg() == 0 {
		in = os.Stdin
	} else {
		readers := make([]io.Reader, 0, flag.NArg())
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}

	doc, err := parse(in)
	if err != nil {
		fail(err)
	}
	if len(doc.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark results found in input"))
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse scans `go test -bench` output: context lines set the header fields,
// "Benchmark..." lines become Results.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			res.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, res)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line of the standard form
//
//	BenchmarkName-8  	 100	  123456 ns/op	  4567 B/op	   89 allocs/op
//
// Unparseable lines are skipped (ok = false) rather than fatal: `-bench`
// output can interleave with log lines from the benchmarks themselves.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			res.BytesPerOp = &v
		case "allocs/op":
			res.AllocsPerOp = &v
		}
	}
	return res, true
}
