package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: topocon
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBuildFromScratch    	      20	    896750 ns/op	  851539 B/op	    4706 allocs/op
BenchmarkAnalyzerIncremental 	      20	    416840 ns/op	  448752 B/op	    1571 allocs/op
BenchmarkRefineVsDecompose/refine            	      20	     78006 ns/op	  119502 B/op	     601 allocs/op
PASS
ok  	topocon	0.040s
pkg: topocon/internal/ma
BenchmarkIntersectOverhead/base-8	 1000	  1234.5 ns/op
some stray log line
ok  	topocon/internal/ma	0.100s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("header = %q/%q/%q", doc.Goos, doc.Goarch, doc.CPU)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[1]
	if b.Name != "BenchmarkAnalyzerIncremental" || b.Pkg != "topocon" ||
		b.Iterations != 20 || b.NsPerOp != 416840 {
		t.Errorf("benchmark 1 = %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 448752 || b.AllocsPerOp == nil || *b.AllocsPerOp != 1571 {
		t.Errorf("benchmark 1 memory stats = %+v", b)
	}
	sub := doc.Benchmarks[2]
	if sub.Name != "BenchmarkRefineVsDecompose/refine" {
		t.Errorf("sub-benchmark name = %q", sub.Name)
	}
	last := doc.Benchmarks[3]
	if last.Pkg != "topocon/internal/ma" || last.NsPerOp != 1234.5 {
		t.Errorf("cross-package benchmark = %+v", last)
	}
	if last.BytesPerOp != nil || last.AllocsPerOp != nil {
		t.Errorf("benchmark without -benchmem carries memory stats: %+v", last)
	}
}

func TestParseRejectsNothing(t *testing.T) {
	doc, err := parse(strings.NewReader("PASS\nok x 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from noise", len(doc.Benchmarks))
	}
}
