// Command topoconvet runs the repo's custom analyzer suite (internal/lint):
// atomicwrite, quarantine, ctxflow, allocfree and facadesync — the
// project's durability, hygiene, cancellation, hot-path and facade
// invariants as compile-time checks.
//
// It speaks two protocols:
//
//	topoconvet ./...                  # standalone, via go list
//	go vet -vettool=$(which topoconvet) ./...   # vet backend, via vet.cfg
//
// Each analyzer has a boolean flag (-atomicwrite, -quarantine, ...);
// naming any analyzer runs only the named ones, and -name=false disables
// one while keeping the rest. Exit codes follow vet convention: 0 clean,
// 1 failure, 2 findings.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"topocon/internal/lint"
)

// selfID hashes the running executable so the go command's vet result
// cache is invalidated whenever the tool is rebuilt.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func main() {
	args := os.Args[1:]
	// The go command's vettool handshake: `-flags` asks for the flag set
	// as JSON; a `-V` probe asks for a version line.
	if len(args) == 1 && args[0] == "-flags" {
		if err := lint.PrintFlags(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "topoconvet: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(args) >= 1 && strings.HasPrefix(args[0], "-V") {
		// The go command derives the vet cache key from this line; the
		// content hash of the executable makes rebuilt tools miss the cache.
		fmt.Printf("topoconvet version devel buildID=%s\n", selfID())
		return
	}

	fs := flag.NewFlagSet("topoconvet", flag.ExitOnError)
	fs.Usage = usage(fs)
	enable := make(map[string]*bool)
	for _, a := range lint.All() {
		enable[a.Name] = fs.Bool(a.Name, false, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(1)
	}
	analyzers := selectAnalyzers(fs, enable)

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		// Invoked by `go vet` on one package unit.
		os.Exit(lint.RunUnit(rest[0], analyzers, os.Stderr))
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	diags, err := lint.LoadAndRun(".", rest, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topoconvet: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// selectAnalyzers applies vet-style flag semantics: explicitly enabling
// any analyzer narrows the run to the enabled set; otherwise everything
// runs except the explicitly disabled.
func selectAnalyzers(fs *flag.FlagSet, enable map[string]*bool) []*lint.Analyzer {
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) {
		if _, ok := enable[f.Name]; ok {
			explicit[f.Name] = *enable[f.Name]
		}
	})
	anyOn := false
	for _, on := range explicit {
		if on {
			anyOn = true
		}
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		on, set := explicit[a.Name]
		switch {
		case anyOn && set && on:
			out = append(out, a)
		case !anyOn && (!set || on):
			out = append(out, a)
		}
	}
	return out
}

func usage(fs *flag.FlagSet) func() {
	return func() {
		fmt.Fprintf(os.Stderr, "usage: topoconvet [flags] [packages]\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which topoconvet) [packages]\n\n")
		fs.PrintDefaults()
	}
}
