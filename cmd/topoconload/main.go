// Command topoconload replays a corpus of scenario and template documents
// against a running topoconsvc instance and asserts service-level
// invariants — it is both a load generator and the CI persistence proof.
//
//	topoconload -addr http://127.0.0.1:8080 scenarios/*.json
//	topoconload -addr http://127.0.0.1:8080 -concurrency 8 \
//	    -min-disk-hit-rate 0.9 -max-constructions 0 scenarios/*.json
//
// Each file is submitted as one job (POST /v1/jobs); the client follows
// the job's event stream until it finishes, then fetches the report. At
// the end it fetches /metrics and /healthz and fails (exit 1) when:
//
//   - any job did not finish "done", any cell errored, or any pinned
//     verdict mismatched (unless -allow-errors),
//   - the done-cell disk-tier hit rate is below -min-disk-hit-rate,
//   - the service constructed more than -max-constructions Analyzer
//     sessions over its lifetime (-1 disables the bound),
//   - the service resumed fewer than -min-resumed-jobs jobs from a
//     predecessor's leftover checkpoint documents (-1 disables; with no
//     input files the client only asserts metrics, for post-restart CI),
//   - /healthz is not 200 after the run.
//
// 429 (queue full) submissions are retried with backoff, so the client
// can be run at a concurrency exceeding the service's queue.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"topocon/internal/retry"
)

type submitAck struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	Name  string `json:"name"`
	Cells int    `json:"cells"`
}

// jobView mirrors the svc wire form, loosely (only what the client reads).
type jobView struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error"`
	Report *struct {
		Cells []struct {
			Name      string `json:"name"`
			Status    string `json:"status"`
			Verdict   string `json:"verdict"`
			Match     *bool  `json:"match"`
			CacheTier string `json:"cacheTier"`
			Err       string `json:"error"`
		} `json:"cells"`
		Summary struct {
			Cells      int `json:"cells"`
			Done       int `json:"done"`
			Errors     int `json:"errors"`
			Cancelled  int `json:"cancelled"`
			Solvable   int `json:"solvable"`
			Impossible int `json:"impossible"`
			Unknown    int `json:"unknown"`
			Mismatches int `json:"mismatches"`
		} `json:"summary"`
	} `json:"report"`
}

type metricsView struct {
	Sessions struct {
		PoolSize             int   `json:"poolSize"`
		Busy                 int   `json:"busy"`
		AnalyzersConstructed int64 `json:"analyzersConstructed"`
	} `json:"sessions"`
	Cache struct {
		Keys       int   `json:"keys"`
		MemoryHits int64 `json:"memoryHits"`
		DiskHits   int64 `json:"diskHits"`
		Computes   int64 `json:"computes"`
	} `json:"cache"`
	Store *struct {
		Records     int `json:"records"`
		Quarantined int `json:"quarantined"`
	} `json:"store"`
	Paging *struct {
		JobsResumed        int64 `json:"jobsResumed"`
		PagesSpilled       int64 `json:"pagesSpilled"`
		PagesFaulted       int64 `json:"pagesFaulted"`
		CheckpointsWritten int64 `json:"checkpointsWritten"`
		CellsResumed       int64 `json:"cellsResumed"`
	} `json:"paging"`
}

// tally aggregates the replay outcome across jobs.
type tally struct {
	mu         sync.Mutex
	jobs       int
	jobsDone   int
	cellsDone  int
	diskCells  int
	memCells   int
	solvable   int
	impossible int
	unknown    int
	errors     int
	mismatches int
	failures   []string
}

func (t *tally) fail(format string, args ...any) {
	t.mu.Lock()
	t.failures = append(t.failures, fmt.Sprintf(format, args...))
	t.mu.Unlock()
}

func main() {
	var (
		addr           = flag.String("addr", "http://127.0.0.1:8080", "topoconsvc base URL")
		concurrency    = flag.Int("concurrency", 8, "concurrent submissions in flight")
		waitHealthy    = flag.Duration("wait-healthy", 30*time.Second, "how long to wait for /healthz before submitting")
		minDiskHitRate = flag.Float64("min-disk-hit-rate", -1, "minimum fraction of done cells served from the disk tier (-1 disables)")
		maxConstructs  = flag.Int64("max-constructions", -1, "maximum Analyzer constructions reported by /metrics (-1 disables)")
		allowErrors    = flag.Bool("allow-errors", false, "tolerate cell errors and verdict mismatches")
		minResumed     = flag.Int64("min-resumed-jobs", -1, "minimum jobs the service re-submitted from a predecessor's leftover documents, per /metrics (-1 disables); with no input files the client only asserts metrics")
		timeout        = flag.Duration("timeout", 2*time.Minute, "per-job completion deadline")
		verbose        = flag.Bool("v", false, "log each job as it completes")
	)
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 && *minResumed < 0 {
		fmt.Fprintln(os.Stderr, "topoconload: no input files")
		os.Exit(2)
	}
	base := strings.TrimRight(*addr, "/")

	if err := awaitHealthy(base, *waitHealthy); err != nil {
		fmt.Fprintf(os.Stderr, "topoconload: %v\n", err)
		os.Exit(1)
	}

	t := &tally{jobs: len(files)}
	sem := make(chan struct{}, max(1, *concurrency))
	var wg sync.WaitGroup
	for _, file := range files {
		wg.Add(1)
		go func(file string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			replay(base, file, *timeout, *verbose, t)
		}(file)
	}
	wg.Wait()

	m, err := fetchMetrics(base)
	if err != nil {
		t.fail("metrics: %v", err)
	}
	if code := probe(base + "/healthz"); code != http.StatusOK {
		t.fail("healthz after run: status %d", code)
	}

	diskRate := 0.0
	if t.cellsDone > 0 {
		diskRate = float64(t.diskCells) / float64(t.cellsDone)
	}
	fmt.Printf("topoconload: %d jobs (%d done), %d cells done: %d solvable / %d impossible / %d unknown, %d errors, %d mismatches\n",
		t.jobs, t.jobsDone, t.cellsDone, t.solvable, t.impossible, t.unknown, t.errors, t.mismatches)
	fmt.Printf("topoconload: cache tiers: %d disk / %d memory / %d computed cells (disk rate %.0f%%); service constructed %d analyzers, %d keys\n",
		t.diskCells, t.memCells, t.cellsDone-t.diskCells-t.memCells, 100*diskRate, m.Sessions.AnalyzersConstructed, m.Cache.Keys)
	if m.Store != nil {
		fmt.Printf("topoconload: store: %d records, %d quarantined\n", m.Store.Records, m.Store.Quarantined)
	}
	if m.Paging != nil {
		fmt.Printf("topoconload: paging: %d spilled / %d faulted, %d checkpoints written; %d cells and %d jobs resumed\n",
			m.Paging.PagesSpilled, m.Paging.PagesFaulted, m.Paging.CheckpointsWritten, m.Paging.CellsResumed, m.Paging.JobsResumed)
	}

	if !*allowErrors && (t.errors > 0 || t.mismatches > 0) {
		t.fail("%d cell errors, %d verdict mismatches", t.errors, t.mismatches)
	}
	if t.jobsDone != t.jobs {
		t.fail("%d of %d jobs finished done", t.jobsDone, t.jobs)
	}
	if *minDiskHitRate >= 0 && diskRate < *minDiskHitRate {
		t.fail("disk-tier hit rate %.2f below required %.2f", diskRate, *minDiskHitRate)
	}
	if *maxConstructs >= 0 && m.Sessions.AnalyzersConstructed > *maxConstructs {
		t.fail("service constructed %d analyzers, bound is %d", m.Sessions.AnalyzersConstructed, *maxConstructs)
	}
	if *minResumed >= 0 {
		var resumed int64
		if m.Paging != nil {
			resumed = m.Paging.JobsResumed
		}
		if resumed < *minResumed {
			t.fail("service resumed %d jobs, required at least %d", resumed, *minResumed)
		}
	}
	if len(t.failures) > 0 {
		for _, f := range t.failures {
			fmt.Fprintf(os.Stderr, "topoconload: FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("topoconload: OK")
}

// replay submits one file, follows its event stream to completion, and
// folds the job's report into the tally.
func replay(base, file string, timeout time.Duration, verbose bool, t *tally) {
	doc, err := os.ReadFile(file)
	if err != nil {
		t.fail("%s: %v", file, err)
		return
	}
	ack, err := submit(base, doc)
	if err != nil {
		t.fail("%s: submit: %v", file, err)
		return
	}
	// Follow the event stream: it blocks until the job's terminal event,
	// exercising the streaming path under load. Fall back to polling only
	// if the stream drops.
	followEvents(base, ack.ID)

	v, err := awaitJob(base, ack.ID, timeout)
	if err != nil {
		t.fail("%s (%s): %v", file, ack.ID, err)
		return
	}
	if verbose {
		fmt.Printf("topoconload: %s (%s) → %s\n", file, ack.ID, v.Status)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if v.Status == "done" {
		t.jobsDone++
	} else {
		t.failures = append(t.failures, fmt.Sprintf("%s (%s): status %s %s", file, ack.ID, v.Status, v.Error))
	}
	if v.Report == nil {
		return
	}
	sum := v.Report.Summary
	t.cellsDone += sum.Done
	t.solvable += sum.Solvable
	t.impossible += sum.Impossible
	t.unknown += sum.Unknown
	t.errors += sum.Errors
	t.mismatches += sum.Mismatches
	for _, c := range v.Report.Cells {
		switch c.CacheTier {
		case "disk":
			t.diskCells++
		case "memory":
			t.memCells++
		}
		if c.Status == "error" {
			t.failures = append(t.failures, fmt.Sprintf("%s: cell %s: %s", file, c.Name, c.Err))
		}
	}
}

// submit POSTs the document, retrying queue-full responses with the
// shared capped-backoff-plus-jitter policy (internal/retry) so a client
// run at a concurrency exceeding the service's queue spreads its retries
// instead of hammering in lockstep. Everything except a 429 is permanent.
func submit(base string, doc []byte) (submitAck, error) {
	var ack submitAck
	policy := retry.Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Attempts: 100}
	err := retry.Do(context.Background(), policy, func(context.Context) error {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(doc)))
		if err != nil {
			return retry.Permanent(err)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			if err := json.Unmarshal(body, &ack); err != nil {
				return retry.Permanent(err)
			}
			return nil
		case http.StatusTooManyRequests:
			return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		default:
			return retry.Permanent(fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body))))
		}
	})
	return ack, err
}

// followEvents drains the job's ndjson event stream until it closes
// (terminal event emitted) or errors; errors are tolerated — awaitJob is
// the source of truth for the outcome.
func followEvents(base, id string) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events?format=ndjson")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for scanner.Scan() {
	}
}

// awaitJob polls until the job reaches a terminal status.
func awaitJob(base, id string, timeout time.Duration) (jobView, error) {
	deadline := time.Now().Add(timeout)
	for {
		var v jobView
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return v, err
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			return v, err
		}
		switch v.Status {
		case "done", "failed", "cancelled":
			return v, nil
		}
		if time.Now().After(deadline) {
			return v, fmt.Errorf("not finished after %v (status %s)", timeout, v.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func awaitHealthy(base string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		if probe(base+"/healthz") == http.StatusOK {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service at %s not healthy after %v", base, patience)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func probe(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		return 0
	}
	resp.Body.Close()
	return resp.StatusCode
}

func fetchMetrics(base string) (metricsView, error) {
	var m metricsView
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	return m, json.NewDecoder(resp.Body).Decode(&m)
}
