// Command ptgviz renders process-time graphs and local views (Figure 2 of
// the paper) and reports the process-view distances between two runs
// (Figure 3).
//
// Usage examples:
//
//	ptgviz -n 3 -inputs 1,0,1 -rounds "1->2,3->2 ; 2->1,2->3" -view 1
//	ptgviz -n 3 -inputs 0,0,0 -rounds "3->2 ; 2->1" -other-inputs 0,0,1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"topocon"
)

func main() {
	var (
		n           = flag.Int("n", 3, "number of processes")
		inputs      = flag.String("inputs", "1,0,1", "comma-separated input values")
		rounds      = flag.String("rounds", "1->2,3->2 ; 2->1,2->3", "';'-separated round edge lists")
		view        = flag.Int("view", 1, "process whose view to highlight (1-based, 0 = none)")
		dot         = flag.Bool("dot", false, "emit Graphviz DOT instead of ASCII")
		otherInputs = flag.String("other-inputs", "", "if set, also compute distances to the run with these inputs (same rounds)")
	)
	flag.Parse()

	run, err := buildRun(*n, *inputs, *rounds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptgviz:", err)
		os.Exit(2)
	}
	if *dot {
		fmt.Print(topocon.RenderPTGraphDOT(run, run.Rounds(), *view-1))
		return
	}
	fmt.Printf("run: %v\n\n", run)
	fmt.Print(topocon.RenderPTGraph(run, run.Rounds(), *view-1))
	if *view >= 1 && *view <= *n {
		cone := topocon.ConeOf(run, *view-1, run.Rounds())
		fmt.Printf("\nview of process %d at t=%d: %d process-time nodes, heard inputs of:",
			*view, run.Rounds(), cone.Size())
		for q := 0; q < *n; q++ {
			if cone.ContainsInitial(q) {
				fmt.Printf(" %d", q+1)
			}
		}
		fmt.Println()
	}
	if *otherInputs == "" {
		return
	}
	other, err := buildRun(*n, *otherInputs, *rounds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptgviz:", err)
		os.Exit(2)
	}
	in := topocon.NewInterner()
	va := topocon.ComputeViews(in, run)
	vb := topocon.ComputeViews(in, other)
	fmt.Printf("\ndistances to x=(%s):\n", *otherInputs)
	for p := 0; p < *n; p++ {
		level := topocon.AgreeLevel(va, vb, p)
		if level > run.Rounds() {
			fmt.Printf("  d_{%d} < 2^-%d (views agree through the whole prefix)\n", p+1, run.Rounds())
		} else {
			fmt.Printf("  d_{%d} = 2^-%d\n", p+1, level)
		}
	}
	fmt.Printf("  d_max = 2^-%d, d_min exponent %d\n",
		topocon.MaxAgreeLevel(va, vb), topocon.MinAgreeLevel(va, vb))
}

func buildRun(n int, inputSpec, roundSpec string) (topocon.Run, error) {
	parts := strings.Split(inputSpec, ",")
	if len(parts) != n {
		return topocon.Run{}, fmt.Errorf("got %d inputs for n=%d", len(parts), n)
	}
	xs := make([]int, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return topocon.Run{}, fmt.Errorf("input %q: %w", p, err)
		}
		xs[i] = v
	}
	run := topocon.NewRun(xs)
	for _, spec := range strings.Split(roundSpec, ";") {
		g, err := topocon.ParseGraph(n, spec)
		if err != nil {
			return topocon.Run{}, err
		}
		run = run.Extend(g)
	}
	return run, nil
}
