// Command experiments regenerates every experiment of EXPERIMENTS.md: one
// section per figure/claim of the paper (E1–E11), printed as markdown. Run
// with -only E5 to restrict to one experiment.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"

	"topocon"
	"topocon/internal/combi"
	"topocon/internal/graph"
	"topocon/internal/ma"
)

// ctx is the run-wide context: Ctrl-C cancels the current analysis session
// instead of killing the process mid-table.
var ctx context.Context

func main() {
	only := flag.String("only", "", "run only the given experiment id (e.g. E5)")
	flag.Parse()
	var stop context.CancelFunc
	ctx, stop = signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	experiments := []struct {
		id   string
		name string
		run  func()
	}{
		{"E1", "process-time graph and views (Fig. 2)", e1},
		{"E2", "process-view distances (Fig. 3)", e2},
		{"E3", "lossy link {<-,<->,->}: impossibility (Sec. 6.1 / [21])", e3},
		{"E4", "reduced lossy link {<-,->}: solvable in one round (Sec. 6.1 / [8])", e4},
		{"E5", "oblivious sweep: separation = broadcastability (Thm. 6.6)", e5},
		{"E6", "compact gap vs non-compact collapse (Figs. 4 & 5)", e6},
		{"E7", "fair limit exclusion: committed-suffix family (Sec. 6.3 / [9])", e7},
		{"E8", "eventually-stable root components (Sec. 6.3 / [23])", e8},
		{"E9", "universal algorithm in the simulator (Thm. 5.5)", e9},
		{"E10", "exact finite adversaries (Cor. 5.6)", e10},
		{"E11", "message-loss thresholds (Sec. 1 / [21, 22])", e11},
		{"E12", "adversary algebra: conjunction of obligations, sequencing, filters", e12},
	}
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		fmt.Printf("## %s — %s\n\n", e.id, e.name)
		e.run()
		fmt.Println()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func checked(adv topocon.Adversary, opts topocon.CheckOptions) *topocon.CheckResult {
	an, err := topocon.NewAnalyzer(adv, topocon.WithCheckOptions(opts))
	if err != nil {
		fail(err)
	}
	res, err := an.Check(ctx)
	if err != nil {
		fail(err)
	}
	return res
}

// e1 renders the paper's Figure 2: the process-time graph at t=2 with
// n=3 and inputs x=(1,0,1), highlighting process 1's view.
func e1() {
	g1 := topocon.MustParseGraph(3, "1->2, 3->2")
	g2 := topocon.MustParseGraph(3, "2->1, 2->3")
	run := topocon.NewRun([]int{1, 0, 1}).Extend(g1).Extend(g2)
	fmt.Println("Process-time graph, x=(1,0,1), rounds [1->2 3->2], [2->1 2->3];")
	fmt.Println("process 1's view V_{1}(PT^2) marked with '*':")
	fmt.Println("```")
	fmt.Print(topocon.RenderPTGraph(run, 2, 0))
	fmt.Println("```")
	cone := topocon.ConeOf(run, 0, 2)
	fmt.Printf("view size: %d process-time nodes; initial values heard by process 1: ", cone.Size())
	heard := make([]string, 0, 3)
	for q := 0; q < 3; q++ {
		if cone.ContainsInitial(q) {
			heard = append(heard, fmt.Sprintf("x%d", q+1))
		}
	}
	fmt.Println(strings.Join(heard, ", "))
}

// e2 reproduces Figure 3's distance values exactly.
func e2() {
	g1 := topocon.MustParseGraph(3, "3->2")
	g2 := topocon.MustParseGraph(3, "2->1")
	alpha := topocon.NewRun([]int{0, 0, 0}).Extend(g1).Extend(g2)
	beta := topocon.NewRun([]int{0, 0, 1}).Extend(g1).Extend(g2)
	in := topocon.NewInterner()
	va := topocon.ComputeViews(in, alpha)
	vb := topocon.ComputeViews(in, beta)
	fmt.Println("α = x(0,0,0), β = x(0,0,1), both with G1=[3->2], G2=[2->1]")
	fmt.Println()
	fmt.Println("| quantity | first difference | distance | paper |")
	fmt.Println("|---|---|---|---|")
	row := func(name string, level int, paper string) {
		fmt.Printf("| %s | t=%d | 2^-%d | %s |\n", name, level, level, paper)
	}
	row("d_{3}", topocon.AgreeLevel(va, vb, 2), "1")
	row("d_{2}", topocon.AgreeLevel(va, vb, 1), "1/2")
	row("d_{1}", topocon.AgreeLevel(va, vb, 0), "1/4")
	row("d_max = d_[n]", topocon.MaxAgreeLevel(va, vb), "1")
	row("d_min", topocon.MinAgreeLevel(va, vb), "1/4")
}

// e3 shows the lossy-link impossibility: persistent mixed components and
// the pump certificate.
func e3() {
	fmt.Println("| horizon | runs | components | mixed | valent comps broadcastable |")
	fmt.Println("|---|---|---|---|---|")
	// One incremental session produces the whole per-horizon table: each
	// Step extends the previous horizon's space by one round.
	an, err := topocon.NewAnalyzer(topocon.LossyLink3(), topocon.WithMaxHorizon(5),
		topocon.WithProgress(func(r topocon.HorizonReport) {
			fmt.Printf("| %d | %d | %d | %d | %v |\n",
				r.Horizon, r.Runs, r.Components, r.MixedComponents, r.Broadcastable)
		}))
	if err != nil {
		fail(err)
	}
	res, err := an.Check(ctx)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nverdict: **%v** (exact=%v)\ncertificate: %v\n",
		res.Verdict, res.Exact, res.Certificate)
}

// e4 shows the one-round solvability of {<-,->}.
func e4() {
	res := checked(topocon.LossyLink2(), topocon.CheckOptions{})
	fmt.Printf("verdict: **%v** (exact=%v), separation horizon %d, broadcast horizon %d\n\n",
		res.Verdict, res.Exact, res.SeparationHorizon, res.BroadcastHorizon)
	times, values, err := res.Map.DecisionRounds(res.Space)
	if err != nil {
		fail(err)
	}
	fmt.Println("| run | decision rounds (p1,p2) | values |")
	fmt.Println("|---|---|---|")
	for i := 0; i < res.Space.Len(); i++ {
		fmt.Printf("| %v | %d,%d | %d,%d |\n", res.Space.RunOf(i),
			times[i][0], times[i][1], values[i][0], values[i][1])
	}
}

// e5 sweeps all oblivious n=2 adversaries plus structured n=3 samples,
// cross-checking the separation and broadcastability criteria.
func e5() {
	fmt.Println("All 15 non-empty graph subsets for n=2 (horizons up to 5):")
	fmt.Println()
	fmt.Println("| adversary | verdict | separation | broadcast | components | certificate |")
	fmt.Println("|---|---|---|---|---|---|")
	combi.Subsets(int(graph.CountAll(2)), func(mask uint64) bool {
		adv := ma.ObliviousFromMask(2, mask)
		res := checked(adv, topocon.CheckOptions{MaxHorizon: 5})
		arrows := make([]string, 0, 4)
		for _, g := range adv.Graphs() {
			arrows = append(arrows, graph.Arrow(g))
		}
		cert := "-"
		switch res.Certificate.(type) {
		case *topocon.BivalenceCertificate:
			cert = "bounded chain"
		case *topocon.PumpCertificate:
			cert = "alternating pump"
		}
		fmt.Printf("| {%s} | %v | %d | %d | %d | %s |\n",
			strings.Join(arrows, ","), res.Verdict,
			res.SeparationHorizon, res.BroadcastHorizon, res.Components, cert)
		return true
	})
	fmt.Println()
	fmt.Println("Structured n=3 samples (horizons up to 4):")
	fmt.Println()
	fmt.Println("| adversary | verdict | separation | broadcast |")
	fmt.Println("|---|---|---|---|")
	samples := []struct {
		name string
		adv  topocon.Adversary
	}{
		{"{complete}", ma.MustOblivious("", graph.Complete(3))},
		{"{cycle}", ma.MustOblivious("", graph.Cycle(3))},
		{"{star1,star1+edge}", ma.MustOblivious("", graph.Star(3, 0), graph.Star(3, 0).AddEdge(1, 2))},
		{"{star1,star2}", ma.MustOblivious("", graph.Star(3, 0), graph.Star(3, 1))},
		{"{silent}", ma.MustOblivious("", graph.New(3))},
		{"{chain,cycle}", ma.MustOblivious("", graph.Chain(3), graph.Cycle(3))},
	}
	for _, s := range samples {
		res := checked(s.adv, topocon.CheckOptions{MaxHorizon: 4})
		fmt.Printf("| %s | %v | %d | %d |\n",
			s.name, res.Verdict, res.SeparationHorizon, res.BroadcastHorizon)
	}
}

// e6 contrasts the compact gap (Fig. 4) with the non-compact collapse
// (Fig. 5): cross-valence distances stay bounded for {<-,->}, and shrink
// as 2^-R along the committed-suffix family.
func e6() {
	fmt.Println("Compact solvable {<-,->}: the decision sets Γ(0), Γ(1) of the *fixed*")
	fmt.Println("universal algorithm stay 2^-1 apart at every horizon (Corollary 6.1,")
	fmt.Println("Fig. 4):")
	fmt.Println()
	fmt.Println("| horizon | min distance between decision sets |")
	fmt.Println("|---|---|")
	// Check stops at the separation horizon; the same session then keeps
	// refining past the verdict, and every SpaceAt space shares the
	// compiled decision map's interner by construction.
	an2, err := topocon.NewAnalyzer(topocon.LossyLink2(), topocon.WithMaxHorizon(5))
	if err != nil {
		fail(err)
	}
	res2, err := an2.Check(ctx)
	if err != nil {
		fail(err)
	}
	for horizon := 1; horizon <= 5; horizon++ {
		for an2.Horizon() < horizon {
			if _, err := an2.Step(ctx); err != nil {
				fail(err)
			}
		}
		level, ok, err := topocon.CrossDecisionLevel(res2.Map, an2.SpaceAt(horizon))
		if err != nil || !ok {
			fail(fmt.Errorf("no cross-decision pairs at horizon %d: %v", horizon, err))
		}
		fmt.Printf("| %d | 2^-%d |\n", horizon, level)
	}
	fmt.Println()
	fmt.Println("Committed-suffix family (free {<-,->,<->}, committed {<-,->}): the")
	fmt.Println("distance between the compiled decision sets PS(0), PS(1) shrinks as")
	fmt.Println("2^-R — in the non-compact union the decision sets have distance 0 and")
	fmt.Println("the fair limit sequences must be excluded (Fig. 5):")
	fmt.Println()
	fmt.Println("| deadline R | min distance between decision sets |")
	fmt.Println("|---|---|")
	free := []topocon.Graph{topocon.LeftGraph, topocon.RightGraph, topocon.BothGraph}
	commit := []topocon.Graph{topocon.LeftGraph, topocon.RightGraph}
	for _, deadline := range []int{1, 2, 3, 4} {
		adv := ma.MustCommittedSuffix("", free, commit, deadline)
		res := checked(adv, topocon.CheckOptions{MaxHorizon: deadline + 2})
		level, ok := res.Map.CrossAssignmentLevel(res.Decomposition)
		if !ok {
			fail(fmt.Errorf("no cross-assignment pairs at deadline %d", deadline))
		}
		fmt.Printf("| %d | 2^-%d |\n", deadline, level)
	}
}

// e7 is the Fevat-Godard exclusion story: solvable committed families with
// growing decision times, plus the exact convergence to the fair limit.
func e7() {
	free := []topocon.Graph{topocon.LeftGraph, topocon.RightGraph, topocon.BothGraph}
	commit := []topocon.Graph{topocon.LeftGraph, topocon.RightGraph}
	fmt.Println("Committed-suffix family over the (impossible) lossy link:")
	fmt.Println()
	fmt.Println("| deadline R | verdict | separation horizon | components |")
	fmt.Println("|---|---|---|---|")
	for _, deadline := range []int{1, 2, 3, 4} {
		adv := ma.MustCommittedSuffix("", free, commit, deadline)
		res := checked(adv, topocon.CheckOptions{MaxHorizon: 7})
		fmt.Printf("| %d | %v | %d | %d |\n",
			deadline, res.Verdict, res.SeparationHorizon, res.Components)
	}
	fmt.Println()
	fmt.Println("Exact lasso convergence to the excluded fair limit r = (0,1)<->^ω:")
	fmt.Println("a_k = (0,1)<->^k ->^ω and b_k = (0,1)<->^k <-^ω (Definition 5.16):")
	fmt.Println()
	fmt.Println("| k | d_min(a_k, b_k) | d_min(a_k, r) | d_min(b_k, r) |")
	fmt.Println("|---|---|---|---|")
	fair, err := topocon.NewLassoRun([]int{0, 1}, topocon.RepeatWord(topocon.BothGraph))
	if err != nil {
		fail(err)
	}
	for k := 1; k <= 6; k++ {
		prefix := make([]topocon.Graph, k)
		for i := range prefix {
			prefix[i] = topocon.BothGraph
		}
		wa, err := topocon.NewGraphWord(prefix, []topocon.Graph{topocon.RightGraph})
		if err != nil {
			fail(err)
		}
		wb, err := topocon.NewGraphWord(prefix, []topocon.Graph{topocon.LeftGraph})
		if err != nil {
			fail(err)
		}
		ak, _ := topocon.NewLassoRun([]int{0, 1}, wa)
		bk, _ := topocon.NewLassoRun([]int{0, 1}, wb)
		fmt.Printf("| %d | 2^-%d | 2^-%d | 2^-%d |\n", k,
			topocon.LassoMinAgreeLevel(ak, bk),
			topocon.LassoMinAgreeLevel(ak, fair),
			topocon.LassoMinAgreeLevel(bk, fair))
	}
}

// e8 sweeps eventually-stable adversaries: solvable once the stability
// window suffices for the root broadcast, with the deadline family showing
// unbounded decision times.
func e8() {
	fmt.Println("n=2, chaos {<-,<->}, stable {->} (root = process 1):")
	fmt.Println()
	fmt.Println("| window W | verdict | broadcaster | max latency after stabilization |")
	fmt.Println("|---|---|---|---|")
	for _, window := range []int{1, 2, 3} {
		adv := ma.MustEventuallyStable("",
			[]topocon.Graph{topocon.LeftGraph, topocon.BothGraph},
			[]topocon.Graph{topocon.RightGraph}, window)
		res := checked(adv, topocon.CheckOptions{MaxHorizon: 5})
		fmt.Printf("| %d | %v | %d | %d |\n",
			window, res.Verdict, res.Broadcaster+1, res.MaxDecisionLatency)
	}
	fmt.Println()
	fmt.Println("n=3, silent chaos, stable chain 1->2->3 (diameter 2):")
	fmt.Println()
	fmt.Println("| window W | verdict | note |")
	fmt.Println("|---|---|---|")
	for _, window := range []int{1, 2, 3} {
		adv := ma.MustEventuallyStable("",
			[]topocon.Graph{topocon.NewGraph(3)},
			[]topocon.Graph{topocon.ChainGraph(3)}, window)
		res := checked(adv, topocon.CheckOptions{MaxHorizon: 5})
		note := "window ≥ diameter: root broadcast completes"
		if res.Verdict != topocon.VerdictSolvable {
			note = "window < diameter: x1 never reaches process 3"
		}
		fmt.Printf("| %d | %v | %s |\n", window, res.Verdict, note)
	}
	fmt.Println()
	fmt.Println("Deadline compactifications (chaos {<-,<->}, stable {->}, W=1):")
	fmt.Println()
	fmt.Println("| deadline R | verdict | separation horizon |")
	fmt.Println("|---|---|---|")
	inner := ma.MustEventuallyStable("",
		[]topocon.Graph{topocon.LeftGraph, topocon.BothGraph},
		[]topocon.Graph{topocon.RightGraph}, 1)
	for _, deadline := range []int{1, 2, 3, 4} {
		adv := ma.MustDeadlineStable(inner, deadline)
		res := checked(adv, topocon.CheckOptions{MaxHorizon: 7})
		fmt.Printf("| %d | %v | %d |\n", deadline, res.Verdict, res.SeparationHorizon)
	}
	fmt.Println()
	fmt.Println("Decision-round distribution of the broadcast rule over 2000 random")
	fmt.Println("12-round admissible runs (chaos {<-,<->}, stable {->}, W=2) — decision")
	fmt.Println("times track stabilization, not any fixed bound:")
	fmt.Println()
	adv := ma.MustEventuallyStable("",
		[]topocon.Graph{topocon.LeftGraph, topocon.BothGraph},
		[]topocon.Graph{topocon.RightGraph}, 2)
	res := checked(adv, topocon.CheckOptions{MaxHorizon: 6})
	factory := topocon.NewFullInfo(res.Rule)
	rng := rand.New(rand.NewSource(42))
	hist := map[int]int{}
	for i := 0; i < 2000; i++ {
		run, done := topocon.RandomDoneRun(adv, rng, 2, 12, 6)
		if !done {
			continue
		}
		hist[topocon.Execute(factory, run).LastDecisionRound()]++
	}
	fmt.Println("| last decision round | runs |")
	fmt.Println("|---|---|")
	for r := 0; r <= 12; r++ {
		if hist[r] > 0 {
			fmt.Printf("| %d | %d |\n", r, hist[r])
		}
	}
}

// e9 drives the universal algorithms through the message-passing simulator
// and contrasts them with FloodMin.
func e9() {
	fmt.Println("Exhaustive simulation of the universal algorithm (full-information")
	fmt.Println("protocol + compiled decision rule), all admissible runs:")
	fmt.Println()
	fmt.Println("| adversary | runs | violations | max decision round |")
	fmt.Println("|---|---|---|---|")
	compactCases := []struct {
		name string
		adv  topocon.Adversary
	}{
		{"{<-,->}", topocon.LossyLink2()},
		{"{<->}", ma.MustOblivious("", topocon.BothGraph)},
		{"{<-,<->}", ma.MustOblivious("", topocon.LeftGraph, topocon.BothGraph)},
	}
	for _, c := range compactCases {
		res := checked(c.adv, topocon.CheckOptions{MaxHorizon: 5})
		factory := topocon.NewFullInfo(res.Rule)
		runs, violations, maxRound := 0, 0, 0
		topocon.ExhaustiveSim(c.adv, factory, 2, 4, func(tr *topocon.Trace, _ ma.Prefix) bool {
			runs++
			violations += len(topocon.CheckProperties(tr, true))
			if r := tr.LastDecisionRound(); r > maxRound {
				maxRound = r
			}
			return true
		})
		fmt.Printf("| %s | %d | %d | %d |\n", c.name, runs, violations, maxRound)
	}
	adv := ma.MustEventuallyStable("",
		[]topocon.Graph{topocon.LeftGraph, topocon.BothGraph},
		[]topocon.Graph{topocon.RightGraph}, 2)
	res := checked(adv, topocon.CheckOptions{MaxHorizon: 6})
	factory := topocon.NewFullInfo(res.Rule)
	rng := rand.New(rand.NewSource(2019))
	runs, violations, maxRound := 0, 0, 0
	for iter := 0; iter < 2000; iter++ {
		run, done := topocon.RandomDoneRun(adv, rng, 2, 14, 7)
		if !done {
			continue
		}
		tr := topocon.Execute(factory, run)
		runs++
		violations += len(topocon.CheckProperties(tr, true))
		if r := tr.LastDecisionRound(); r > maxRound {
			maxRound = r
		}
	}
	fmt.Printf("| eventually ->^2 (random, 14 rounds) | %d | %d | %d |\n", runs, violations, maxRound)
	fmt.Println()
	fmt.Println("FloodMin baseline under the lossy link (agreement violations expected):")
	fmt.Println()
	fmt.Println("| decide round | runs | runs violating agreement |")
	fmt.Println("|---|---|---|")
	for _, k := range []int{1, 2, 3} {
		runs, bad := 0, 0
		topocon.ExhaustiveSim(topocon.LossyLink3(), topocon.NewFloodMin(k), 2, k+1,
			func(tr *topocon.Trace, _ ma.Prefix) bool {
				runs++
				if len(topocon.CheckProperties(tr, false)) > 0 {
					bad++
				}
				return true
			})
		fmt.Printf("| %d | %d | %d |\n", k, runs, bad)
	}
}

// e10 applies the exact Corollary 5.6 checker to finite adversaries.
func e10() {
	fmt.Println("| finite adversary | runs | components | mixed | bridge pairs | solvable |")
	fmt.Println("|---|---|---|---|---|---|")
	cases := []struct {
		name  string
		words []topocon.GraphWord
		n     int
	}{
		{"{--^ω}", []topocon.GraphWord{topocon.RepeatWord(topocon.NeitherGraph)}, 2},
		{"{<-^ω}", []topocon.GraphWord{topocon.RepeatWord(topocon.LeftGraph)}, 2},
		{"{->^ω}", []topocon.GraphWord{topocon.RepeatWord(topocon.RightGraph)}, 2},
		{"{<-^ω, ->^ω}", []topocon.GraphWord{
			topocon.RepeatWord(topocon.LeftGraph), topocon.RepeatWord(topocon.RightGraph)}, 2},
		{"{<-^ω, ->^ω, --^ω}", []topocon.GraphWord{
			topocon.RepeatWord(topocon.LeftGraph), topocon.RepeatWord(topocon.RightGraph),
			topocon.RepeatWord(topocon.NeitherGraph)}, 2},
		{"{(<- ->)^ω, (-> <-)^ω}", []topocon.GraphWord{
			mustWord(nil, []topocon.Graph{topocon.LeftGraph, topocon.RightGraph}),
			mustWord(nil, []topocon.Graph{topocon.RightGraph, topocon.LeftGraph})}, 2},
		{"n=3 {sink^ω}", []topocon.GraphWord{
			topocon.RepeatWord(topocon.MustParseGraph(3, "1<->2, 1->3, 2->3"))}, 3},
		{"n=3 {silent^ω}", []topocon.GraphWord{topocon.RepeatWord(topocon.NewGraph(3))}, 3},
	}
	for _, c := range cases {
		a, err := topocon.AnalyzeFinite(c.words, 2)
		if err != nil {
			fail(err)
		}
		fmt.Printf("| %s | %d | %d | %d | %d | %v |\n",
			c.name, len(a.Runs), len(a.Components), len(a.Mixed), len(a.BridgePairs), a.Solvable)
	}
}

func mustWord(prefix, cycle []topocon.Graph) topocon.GraphWord {
	w, err := topocon.NewGraphWord(prefix, cycle)
	if err != nil {
		fail(err)
	}
	return w
}

// e12 exercises the PR 2 combinator algebra: workloads assembled by
// intersection, sequencing and filtering, keyed by behavioural
// fingerprint. The same adversaries ship declaratively in scenarios/.
func e12() {
	lossy3 := topocon.LossyLink3()
	evRooted := ma.MustEventuallyStable("",
		[]topocon.Graph{topocon.LeftGraph, topocon.BothGraph, topocon.NeitherGraph},
		[]topocon.Graph{topocon.RightGraph}, 1)
	cases := []struct {
		label   string
		adv     topocon.Adversary
		horizon int
	}{
		{"lossy3 ~ repeat^2 ∩ eventually ->", ma.MustIntersect("",
			ma.MustWindowStable(lossy3, 2), evRooted), 5},
		{"chaos ·2· {<-,->}", ma.MustConcat("",
			topocon.Unrestricted(2), 2, topocon.LossyLink2()), 6},
		{"unrestricted filtered to nonsplit", ma.MustFilter(
			topocon.Unrestricted(2), "", ma.PredNonsplit()), 5},
		{"{<-,->} ~ repeat^2", ma.MustWindowStable(topocon.LossyLink2(), 2), 5},
	}
	fmt.Println("| adversary | compact | verdict | fingerprint(6) |")
	fmt.Println("|---|---|---|---|")
	for _, c := range cases {
		res := checked(c.adv, topocon.CheckOptions{MaxHorizon: c.horizon})
		fmt.Printf("| %s | %v | %v | %s |\n",
			c.label, c.adv.Compact(), res.Verdict, ma.FingerprintShort(c.adv, 6))
	}
	fmt.Println()
	fmt.Println("(The nonsplit filter stays 'unknown' because the impossibility")
	fmt.Println("certificate searches are wired to oblivious adversaries; its language")
	fmt.Println("is exactly the lossy link, and the behavioural fingerprint detects the")
	fmt.Println("coincidence — the hook a result cache would key on:)")
	fmt.Println()
	fmt.Printf("Fingerprint(unrestricted|nonsplit) == Fingerprint(lossy3): %v\n",
		topocon.Fingerprint(ma.MustFilter(topocon.Unrestricted(2), "", ma.PredNonsplit()), 6) ==
			topocon.Fingerprint(lossy3, 6))
}

// e11 sweeps the Santoro-Widmayer loss-bounded adversaries: at most f
// messages lost per round.
func e11() {
	fmt.Println("At most f of the n(n-1) messages lost per round ([21]: impossible for")
	fmt.Println("f ≥ n-1; [22]: solvable below the isolation threshold):")
	fmt.Println()
	fmt.Println("| n | f | graphs | verdict | separation | certificate |")
	fmt.Println("|---|---|---|---|---|---|")
	cases := []struct{ n, f, horizon int }{
		{2, 0, 2}, {2, 1, 3},
		{3, 0, 2}, {3, 1, 3}, {3, 2, 2},
	}
	for _, c := range cases {
		adv := ma.LossBounded(c.n, c.f)
		res := checked(adv, topocon.CheckOptions{MaxHorizon: c.horizon})
		cert := "-"
		switch res.Certificate.(type) {
		case *topocon.BivalenceCertificate:
			cert = "bounded chain"
		case *topocon.PumpCertificate:
			cert = "alternating pump"
		}
		fmt.Printf("| %d | %d | %d | %v | %d | %s |\n",
			c.n, c.f, len(adv.Graphs()), res.Verdict, res.SeparationHorizon, cert)
	}
}
