// Command topoconsvc is the always-on checker daemon: an HTTP/JSON
// service that accepts scenario and template submissions as jobs, runs
// them on a bounded global session pool, and serves verdicts from a
// persistent content-addressed store, so isomorphic questions are solved
// once per corpus — not once per process.
//
//	topoconsvc -addr :8080 -store-dir /var/lib/topocon/verdicts
//	topoconsvc -addr :8080 -store-dir ./verdicts -workers 4 -max-queue 128
//
// Endpoints (see docs/topoconsvc.md for the full reference):
//
//	POST /v1/jobs              submit a scenario or template JSON document
//	GET  /v1/jobs              list jobs
//	GET  /v1/jobs/{id}         job status and report
//	GET  /v1/jobs/{id}/events  progress stream (SSE; ?format=ndjson)
//	GET  /v1/verdicts/{key}    one verdict by canonical sweep key
//	GET  /healthz              liveness
//	GET  /metrics              JSON counters
//
// SIGINT/SIGTERM shut the daemon down gracefully: submissions get 503,
// in-flight jobs wind down to well-formed partial reports, and the
// process exits once the runners drain (or the grace period elapses).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"topocon/internal/faultfs"
	"topocon/internal/svc"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		storeDir    = flag.String("store-dir", "", "persistent verdict store directory (required)")
		workers     = flag.Int("workers", 2, "global session pool: max concurrently running Analyzer sessions across all jobs")
		maxQueue    = flag.Int("max-queue", 64, "max jobs accepted but not yet running; beyond it submissions get 429")
		maxBody     = flag.Int64("max-body-bytes", 1<<20, "max submission body size in bytes")
		cellPar     = flag.Int("cell-parallelism", 1, "per-session Analyzer worker-pool size")
		cellTimeout = flag.Duration("cell-timeout", 0, "per-cell analysis wall-time budget (0 = unbounded)")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job wall-time budget (0 = unbounded)")
		grace       = flag.Duration("grace", 30*time.Second, "shutdown grace period for draining in-flight jobs")
		ckptDir     = flag.String("checkpoint-dir", "", "durability directory: per-cell session checkpoints and accepted job documents; leftover jobs are re-submitted at startup (empty = off)")
		ckptEvery   = flag.Int("checkpoint-every", 1, "cell checkpoint cadence in horizons (with -checkpoint-dir)")
		hotBytes    = flag.Int64("pager-hot-bytes", 0, "per-cell frontier hot-set budget in bytes; colder rounds spill to the checkpoint dir (0 = unlimited, with -checkpoint-dir)")
		workerID    = flag.String("worker-id", "", "coordinated worker mode: this daemon's id in a fleet sharing one -store-dir/-checkpoint-dir; enables the /v1/cells claim endpoints (needs -checkpoint-dir)")
		leaseTTL    = flag.Duration("lease-ttl", 30*time.Second, "cell-lease duration in coordinated worker mode; claims renew every third of it")
		faultSpec   = flag.String("fault", "", "deterministic fault-injection schedule for chaos testing, e.g. 'fail:lease:2,stall:horizon:3' (see internal/faultfs)")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "topoconsvc: -store-dir is required (the daemon exists to persist verdicts)")
		flag.Usage()
		os.Exit(2)
	}
	if *workerID != "" && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "topoconsvc: -worker-id needs -checkpoint-dir (leases and adoptable checkpoints live there)")
		flag.Usage()
		os.Exit(2)
	}
	faults, err := faultfs.Parse(*faultSpec)
	if err != nil {
		log.Fatalf("topoconsvc: %v", err)
	}

	service, err := svc.New(svc.Config{
		StoreDir:        *storeDir,
		Workers:         *workers,
		MaxQueue:        *maxQueue,
		MaxBodyBytes:    *maxBody,
		CellParallelism: *cellPar,
		CellTimeout:     *cellTimeout,
		JobTimeout:      *jobTimeout,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		PagerHotBytes:   *hotBytes,
		WorkerID:        *workerID,
		LeaseTTL:        *leaseTTL,
		Faults:          faults,
	})
	if err != nil {
		log.Fatalf("topoconsvc: %v", err)
	}
	st := service.Store().Stats()
	log.Printf("topoconsvc: store %s: %d verdicts (%d bytes), %d quarantined", st.Dir, st.Records, st.Bytes, st.Quarantined)
	if *ckptDir != "" {
		if m := service.Metrics(); m.Paging != nil && m.Paging.JobsResumed > 0 {
			log.Printf("topoconsvc: checkpoint dir %s: re-submitted %d unfinished job(s)", *ckptDir, m.Paging.JobsResumed)
		} else {
			log.Printf("topoconsvc: checkpoint dir %s: no unfinished jobs", *ckptDir)
		}
	}
	if *workerID != "" {
		log.Printf("topoconsvc: coordinated worker %q (lease TTL %v)", *workerID, *leaseTTL)
	}

	server := &http.Server{Addr: *addr, Handler: service.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	log.Printf("topoconsvc: listening on %s (workers %d, queue %d)", *addr, *workers, *maxQueue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("topoconsvc: %v: draining (grace %v)", sig, *grace)
	case err := <-errc:
		log.Fatalf("topoconsvc: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := service.Shutdown(ctx); err != nil {
		log.Printf("topoconsvc: %v", err)
	}
	if err := server.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("topoconsvc: http shutdown: %v", err)
	}
	st = service.Store().Stats()
	log.Printf("topoconsvc: stopped; store holds %d verdicts", st.Records)
}
