package topocon_test

import (
	"fmt"
	"testing"

	"topocon"
)

// TestFacadeLossyLink exercises the public API end to end on the two
// headline examples.
func TestFacadeLossyLink(t *testing.T) {
	res, err := topocon.CheckConsensus(topocon.LossyLink2(), topocon.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != topocon.VerdictSolvable {
		t.Fatalf("{<-,->}: %v, want solvable", res.Verdict)
	}
	res3, err := topocon.CheckConsensus(topocon.LossyLink3(), topocon.CheckOptions{MaxHorizon: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Verdict != topocon.VerdictImpossible {
		t.Fatalf("{<-,<->,->}: %v, want impossible", res3.Verdict)
	}
}

// TestFacadeSimulation runs the universal algorithm through the public
// simulator entry points.
func TestFacadeSimulation(t *testing.T) {
	adv := topocon.LossyLink2()
	res, err := topocon.CheckConsensus(adv, topocon.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	factory := topocon.NewFullInfo(res.Rule)
	run := topocon.NewRun([]int{0, 1}).Extend(topocon.RightGraph).Extend(topocon.LeftGraph)
	tr := topocon.Execute(factory, run)
	if violations := topocon.CheckProperties(tr, true); len(violations) != 0 {
		t.Fatalf("violations: %v", violations)
	}
}

// TestFacadeLasso exercises the exact-lasso API.
func TestFacadeLasso(t *testing.T) {
	a, err := topocon.NewLassoRun([]int{0, 0}, topocon.RepeatWord(topocon.RightGraph))
	if err != nil {
		t.Fatal(err)
	}
	b, err := topocon.NewLassoRun([]int{0, 1}, topocon.RepeatWord(topocon.RightGraph))
	if err != nil {
		t.Fatal(err)
	}
	if !topocon.LassoDistanceZero(a, b) {
		t.Error("hidden input flip must have distance 0")
	}
	analysis, err := topocon.AnalyzeFinite([]topocon.GraphWord{topocon.RepeatWord(topocon.NeitherGraph)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if analysis.Solvable {
		t.Error("silent word must be unsolvable")
	}
}

// TestFacadeTopology exercises spaces, decompositions and renderings.
func TestFacadeTopology(t *testing.T) {
	s, err := topocon.BuildSpace(topocon.LossyLink2(), 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := topocon.Decompose(s)
	if len(d.MixedComponents()) != 0 {
		t.Error("unexpected mixed components under {<-,->}")
	}
	g := topocon.MustParseGraph(3, "1->2, 3->2")
	run := topocon.NewRun([]int{1, 0, 1}).Extend(g)
	if out := topocon.RenderPTGraph(run, 1, 1); out == "" {
		t.Error("empty rendering")
	}
}

// ExampleCheckConsensus is the quickstart of the README.
func ExampleCheckConsensus() {
	res, err := topocon.CheckConsensus(topocon.LossyLink2(), topocon.CheckOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verdict, "at horizon", res.SeparationHorizon)
	// Output: solvable at horizon 1
}
