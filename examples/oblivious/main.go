// Oblivious-adversary explorer: sweeps graph-set families, compares the
// topological checker against the heard-set broadcast automaton, and
// reports where each certificate form (bounded chain vs alternating pump)
// applies — the computational content of Theorem 6.6 and Section 6.1.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"topocon"
)

func main() {
	sweepN2()
	structuredN3()
}

// check runs one analysis session; the sweep reuses it per adversary.
func check(adv topocon.Adversary, horizon int) *topocon.CheckResult {
	an, err := topocon.NewAnalyzer(adv, topocon.WithMaxHorizon(horizon))
	if err != nil {
		log.Fatal(err)
	}
	res, err := an.Check(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func sweepN2() {
	fmt.Println("== all 15 oblivious adversaries on n=2 ==")
	fmt.Println("set            verdict     sep  certificate        guaranteed broadcasters")
	var graphs []topocon.Graph
	topocon.EnumerateGraphs(2, func(g topocon.Graph) bool {
		graphs = append(graphs, g)
		return true
	})
	for mask := 1; mask < 1<<len(graphs); mask++ {
		var set []topocon.Graph
		var names []string
		for i, g := range graphs {
			if mask&(1<<i) != 0 {
				set = append(set, g)
				names = append(names, arrow(g))
			}
		}
		adv, err := topocon.NewOblivious("", set)
		if err != nil {
			log.Fatal(err)
		}
		res := check(adv, 5)
		cert := "-"
		switch res.Certificate.(type) {
		case *topocon.BivalenceCertificate:
			cert = "bounded chain"
		case *topocon.PumpCertificate:
			cert = "alternating pump"
		}
		bc, _ := topocon.GuaranteedBroadcasters(adv)
		fmt.Printf("%-14s %-11v %3d  %-18s %s\n",
			"{"+strings.Join(names, ",")+"}", res.Verdict, res.SeparationHorizon,
			cert, nodeSet(bc, 2))
	}
	fmt.Println()
}

func structuredN3() {
	fmt.Println("== structured n=3 families ==")
	cases := []struct {
		name string
		set  []topocon.Graph
	}{
		{"complete only", []topocon.Graph{topocon.CompleteGraph(3)}},
		{"rotating stars", []topocon.Graph{
			topocon.StarGraph(3, 0), topocon.StarGraph(3, 1), topocon.StarGraph(3, 2)}},
		{"cycle + chain", []topocon.Graph{topocon.CycleGraph(3), topocon.ChainGraph(3)}},
		{"chain both ways", []topocon.Graph{
			topocon.ChainGraph(3), topocon.MustParseGraph(3, "3->2, 2->1")}},
		{"with silent", []topocon.Graph{topocon.CompleteGraph(3), topocon.NewGraph(3)}},
	}
	for _, c := range cases {
		adv, err := topocon.NewOblivious(c.name, c.set)
		if err != nil {
			log.Fatal(err)
		}
		res := check(adv, 4)
		bc, worst := topocon.GuaranteedBroadcasters(adv)
		fmt.Printf("%-16s %-10v separation=%d broadcasters=%s (worst delay %d)\n",
			c.name, res.Verdict, res.SeparationHorizon, nodeSet(bc, 3), worst)
		// Per-process heard-set automaton detail.
		for p := 0; p < 3; p++ {
			a := topocon.AnalyzeHeardSet(adv, p)
			if a.CanTrap {
				fmt.Printf("    process %d: adversary can suppress its broadcast (trap %s)\n",
					p+1, nodeSet(a.TrapSet, 3))
			} else {
				fmt.Printf("    process %d: broadcasts within %d rounds in every run\n",
					p+1, a.WorstBroadcastRounds)
			}
		}
	}
}

func arrow(g topocon.Graph) string {
	l, r := g.HasEdge(1, 0), g.HasEdge(0, 1)
	switch {
	case l && r:
		return "<->"
	case l:
		return "<-"
	case r:
		return "->"
	default:
		return "--"
	}
}

func nodeSet(mask uint64, n int) string {
	var out []string
	for p := 0; p < n; p++ {
		if mask&(1<<p) != 0 {
			out = append(out, fmt.Sprint(p+1))
		}
	}
	if len(out) == 0 {
		return "{}"
	}
	return "{" + strings.Join(out, ",") + "}"
}
