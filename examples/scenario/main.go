// Scenario: define message adversaries with the combinator algebra and
// with declarative JSON scenario specs, then analyse both through one
// Analyzer session and key the results by behavioural fingerprint.
package main

import (
	"context"
	"fmt"
	"log"

	"topocon"
)

func main() {
	ctx := context.Background()

	// Algebra, programmatically: the lossy link restricted to nonsplit
	// graphs (drops nothing for n=2 but demonstrates Filter), sequenced
	// after two rounds of unrestricted chaos — a workload no single seed
	// constructor expresses.
	lossy, err := topocon.NewFilter(topocon.Unrestricted(2), "", topocon.PredNonsplit())
	if err != nil {
		log.Fatal(err)
	}
	chaosThenLossy, err := topocon.NewConcat("", topocon.Unrestricted(2), 2, lossy)
	if err != nil {
		log.Fatal(err)
	}
	if err := topocon.ValidateAdversary(chaosThenLossy, 6); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("algebraic adversary: %s\n  fingerprint: %s\n",
		chaosThenLossy.Name(), topocon.Fingerprint(chaosThenLossy, 6)[:16])
	an, err := topocon.NewAnalyzer(chaosThenLossy, topocon.WithMaxHorizon(5))
	if err != nil {
		log.Fatal(err)
	}
	res, err := an.Check(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verdict: %v\n\n", res.Verdict)

	// The same kind of workload, declaratively. ParseScenario accepts the
	// JSON scenario format; LoadScenario reads it from a file (see the
	// scenarios/ corpus at the repository root).
	spec := []byte(`{
	  "name": "intersect-demo",
	  "description": "lossy link with two independent liveness obligations",
	  "n": 2,
	  "graphs": {"L": "2->1", "R": "1->2", "B": "1<->2"},
	  "adversary": {
	    "op": "intersect",
	    "args": [
	      {"op": "window-stable", "arg": {"op": "oblivious", "graphs": ["L", "R", "B"]}, "window": 2},
	      {"op": "eventually-stable", "chaos": ["L", "B", ""], "stable": ["R"], "window": 1}
	    ]
	  },
	  "check": {"maxHorizon": 5}
	}`)
	sc, err := topocon.ParseScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q: %s\n  fingerprint: %s\n", sc.Name, sc.Adversary.Name(), sc.Fingerprint(6)[:16])
	an2, err := topocon.NewAnalyzer(sc.Adversary, topocon.WithCheckOptions(sc.Options))
	if err != nil {
		log.Fatal(err)
	}
	res2, err := an2.Check(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verdict: %v\n\n", res2.Verdict)

	// Every seed family also ships as a built-in scenario.
	scenarios, err := topocon.ScenarioRegistry()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("built-in scenarios:")
	for _, s := range scenarios {
		fmt.Printf("  %-22s %s\n", s.Name, s.Description)
	}
}
