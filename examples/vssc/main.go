// Non-compact message adversaries in action: the eventually-stable root
// component family of Section 6.3 ([23]). The example shows
//
//  1. the stability-window threshold (window ≥ stable-graph diameter) that
//     separates solvable from unsolvable,
//  2. the broadcast-rule universal algorithm running over long randomized
//     admissible runs, and
//  3. the deadline compactifications whose decision times grow without
//     bound — the observable trace of non-compactness.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"topocon"
)

func main() {
	threshold()
	simulate()
	deadlines()
}

// check runs a full analysis session for adv at the given horizon.
func check(adv topocon.Adversary, horizon int) *topocon.CheckResult {
	an, err := topocon.NewAnalyzer(adv, topocon.WithMaxHorizon(horizon))
	if err != nil {
		log.Fatal(err)
	}
	res, err := an.Check(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func threshold() {
	fmt.Println("== stability-window threshold (n=3, stable chain 1->2->3) ==")
	for window := 1; window <= 3; window++ {
		adv, err := topocon.NewEventuallyStable("",
			[]topocon.Graph{topocon.NewGraph(3)}, // silent chaos
			[]topocon.Graph{topocon.ChainGraph(3)}, window)
		if err != nil {
			log.Fatal(err)
		}
		res := check(adv, 5)
		fmt.Printf("window %d: %v", window, res.Verdict)
		if res.Verdict == topocon.VerdictSolvable {
			fmt.Printf(" (broadcaster: process %d)", res.Broadcaster+1)
		}
		fmt.Println()
	}
	fmt.Println()
}

func simulate() {
	fmt.Println("== broadcast rule over long random admissible runs (n=2) ==")
	adv, err := topocon.NewEventuallyStable("",
		[]topocon.Graph{topocon.LeftGraph, topocon.BothGraph},
		[]topocon.Graph{topocon.RightGraph}, 2)
	if err != nil {
		log.Fatal(err)
	}
	res := check(adv, 6)
	factory := topocon.NewFullInfo(res.Rule)
	rng := rand.New(rand.NewSource(23))
	worst := 0
	for i := 0; i < 500; i++ {
		run, done := topocon.RandomDoneRun(adv, rng, 2, 16, 8)
		if !done {
			continue
		}
		tr := topocon.Execute(factory, run)
		if v := topocon.CheckProperties(tr, true); len(v) > 0 {
			log.Fatalf("violations on %v: %v", run, v)
		}
		if r := tr.LastDecisionRound(); r > worst {
			worst = r
		}
	}
	fmt.Printf("500 random 16-round admissible runs: all satisfy (T),(A),(V);\n")
	fmt.Printf("worst decision round: %d (tracks when the adversary stabilizes)\n\n", worst)
}

func deadlines() {
	fmt.Println("== deadline compactifications: unbounded decision times ==")
	inner, err := topocon.NewEventuallyStable("",
		[]topocon.Graph{topocon.LeftGraph, topocon.BothGraph},
		[]topocon.Graph{topocon.RightGraph}, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, deadline := range []int{1, 2, 3, 4} {
		adv, err := topocon.NewDeadlineStable(inner, deadline)
		if err != nil {
			log.Fatal(err)
		}
		res := check(adv, 7)
		fmt.Printf("deadline %d: %v, separation horizon %d\n",
			deadline, res.Verdict, res.SeparationHorizon)
	}
	fmt.Println("every member is compact and solvable, but no algorithm bounds the")
	fmt.Println("decision time over the union — the union is the non-compact adversary")
	fmt.Println("whose excluded limits are the never-stabilizing sequences.")
}
