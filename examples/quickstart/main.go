// Quickstart: decide solvability of the two classic lossy-link adversaries
// with an Analyzer session and run the extracted universal algorithm
// through the simulator.
package main

import (
	"context"
	"fmt"
	"log"

	"topocon"
)

func main() {
	ctx := context.Background()

	// The Santoro-Widmayer adversary {<-,<->,->}: impossible. The session
	// reports each horizon as the prefix space is refined incrementally.
	an3, err := topocon.NewAnalyzer(topocon.LossyLink3(),
		topocon.WithProgress(func(r topocon.HorizonReport) {
			fmt.Printf("  horizon %d: %d runs, %d components (%d mixed)\n",
				r.Horizon, r.Runs, r.Components, r.MixedComponents)
		}))
	if err != nil {
		log.Fatal(err)
	}
	res3, err := an3.Check(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %v\n  proof: %v\n\n", res3.AdversaryName, res3.Verdict, res3.Certificate)

	// The Coulouma-Godard-Peters reduction {<-,->}: solvable in one round.
	an2, err := topocon.NewAnalyzer(topocon.LossyLink2())
	if err != nil {
		log.Fatal(err)
	}
	res2, err := an2.Check(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %v (separation at horizon %d)\n\n", res2.AdversaryName, res2.Verdict,
		res2.SeparationHorizon)

	// Execute the compiled universal algorithm (Theorem 5.5) as a real
	// message-passing protocol on one admissible run.
	run := topocon.NewRun([]int{0, 1}).
		Extend(topocon.RightGraph). // round 1: 1 -> 2
		Extend(topocon.LeftGraph)   // round 2: 2 -> 1
	trace := topocon.Execute(topocon.NewFullInfo(res2.Rule), run)
	fmt.Printf("run %v\n", run)
	for p, round := range trace.DecisionRound {
		fmt.Printf("  process %d decides %d in round %d\n", p+1, trace.Value[p], round)
	}
	if violations := topocon.CheckProperties(trace, true); len(violations) > 0 {
		log.Fatalf("consensus violated: %v", violations)
	}
	fmt.Println("termination, agreement, validity: all hold")
}
