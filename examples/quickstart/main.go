// Quickstart: decide solvability of the two classic lossy-link adversaries
// and run the extracted universal algorithm through the simulator.
package main

import (
	"fmt"
	"log"

	"topocon"
)

func main() {
	// The Santoro-Widmayer adversary {<-,<->,->}: impossible.
	res3, err := topocon.CheckConsensus(topocon.LossyLink3(), topocon.CheckOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %v\n  proof: %v\n\n", res3.AdversaryName, res3.Verdict, res3.Certificate)

	// The Coulouma-Godard-Peters reduction {<-,->}: solvable in one round.
	res2, err := topocon.CheckConsensus(topocon.LossyLink2(), topocon.CheckOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %v (separation at horizon %d)\n\n", res2.AdversaryName, res2.Verdict,
		res2.SeparationHorizon)

	// Execute the compiled universal algorithm (Theorem 5.5) as a real
	// message-passing protocol on one admissible run.
	run := topocon.NewRun([]int{0, 1}).
		Extend(topocon.RightGraph). // round 1: 1 -> 2
		Extend(topocon.LeftGraph)   // round 2: 2 -> 1
	trace := topocon.Execute(topocon.NewFullInfo(res2.Rule), run)
	fmt.Printf("run %v\n", run)
	for p, round := range trace.DecisionRound {
		fmt.Printf("  process %d decides %d in round %d\n", p+1, trace.Value[p], round)
	}
	if violations := topocon.CheckProperties(trace, true); len(violations) > 0 {
		log.Fatalf("consensus violated: %v", violations)
	}
	fmt.Println("termination, agreement, validity: all hold")
}
