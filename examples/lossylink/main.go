// The full n=2 lossy-link tour: the geometry behind Figures 3, 4 and 5 of
// the paper, computed on real runs — distances, ε-approximation
// components, the bivalent chain that kills {<-,<->,->}, and the fair
// limit sequence whose exclusion restores solvability.
package main

import (
	"context"
	"fmt"
	"log"

	"topocon"
)

func main() {
	distances()
	components()
	impossibility()
	fairLimit()
}

// check runs a full analysis session for adv.
func check(adv topocon.Adversary, opts ...topocon.AnalyzerOption) *topocon.CheckResult {
	an, err := topocon.NewAnalyzer(adv, opts...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := an.Check(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// distances computes d_{p}, d_min, d_max on a run pair (cf. Figure 3).
func distances() {
	fmt.Println("== process-view distances ==")
	in := topocon.NewInterner()
	// Same graphs, inputs differ at process 2; process 1 hears nothing.
	a := topocon.NewRun([]int{0, 0}).Extend(topocon.RightGraph).Extend(topocon.RightGraph)
	b := topocon.NewRun([]int{0, 1}).Extend(topocon.RightGraph).Extend(topocon.RightGraph)
	va, vb := topocon.ComputeViews(in, a), topocon.ComputeViews(in, b)
	fmt.Printf("a = %v\nb = %v\n", a, b)
	fmt.Printf("d_{1}: agree through the whole prefix (exponent %d > rounds)\n",
		topocon.AgreeLevel(va, vb, 0))
	fmt.Printf("d_{2} = 2^-%d, d_min exponent %d, d_max = 2^-%d\n\n",
		topocon.AgreeLevel(va, vb, 1), topocon.MinAgreeLevel(va, vb),
		topocon.MaxAgreeLevel(va, vb))
}

// components shows the ε-approximation of Definition 6.2 at work for the
// solvable {<-,->}.
func components() {
	fmt.Println("== ε-approximation components of {<-,->} at horizon 1 ==")
	s, err := topocon.BuildSpace(topocon.LossyLink2(), 2, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	d := topocon.Decompose(s)
	for ci := range d.Comps {
		c := &d.Comps[ci]
		fmt.Printf("component %d (valences %v):\n", ci, c.Valences)
		for _, i := range c.Members {
			fmt.Printf("  %v\n", s.RunOf(i))
		}
	}
	fmt.Println()
}

// impossibility shows the certified bivalence proof for {<-,<->,->}.
func impossibility() {
	fmt.Println("== impossibility of {<-,<->,->} ==")
	res := check(topocon.LossyLink3(), topocon.WithMaxHorizon(5))
	fmt.Printf("verdict: %v\n", res.Verdict)
	fmt.Printf("mixed components persist: %d of %d at horizon %d\n",
		res.MixedComponents, res.Components, res.Horizon)
	fmt.Printf("certificate: %v\n\n", res.Certificate)
}

// fairLimit reproduces the Fig. 5 convergence: runs on both decision sides
// approach the excluded fair sequence.
func fairLimit() {
	fmt.Println("== fair limit (0,1)<->^ω (Definition 5.16) ==")
	fair, err := topocon.NewLassoRun([]int{0, 1}, topocon.RepeatWord(topocon.BothGraph))
	if err != nil {
		log.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		prefix := make([]topocon.Graph, k)
		for i := range prefix {
			prefix[i] = topocon.BothGraph
		}
		right, _ := topocon.NewGraphWord(prefix, []topocon.Graph{topocon.RightGraph})
		left, _ := topocon.NewGraphWord(prefix, []topocon.Graph{topocon.LeftGraph})
		ak, _ := topocon.NewLassoRun([]int{0, 1}, right)
		bk, _ := topocon.NewLassoRun([]int{0, 1}, left)
		fmt.Printf("k=%d: d(a_k,b_k)=2^-%d  d(a_k,r)=2^-%d  d(b_k,r)=2^-%d\n", k,
			topocon.LassoMinAgreeLevel(ak, bk),
			topocon.LassoMinAgreeLevel(ak, fair),
			topocon.LassoMinAgreeLevel(bk, fair))
	}
	fmt.Println("both families converge to r from different decision sides;")
	fmt.Println("r itself must not be admissible for consensus to be solvable.")
}
