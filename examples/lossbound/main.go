// Message-loss thresholds: the Santoro-Widmayer adversary family that
// opens the paper's introduction. With at most f of the n(n-1) messages
// lost per round, consensus is impossible exactly when f ≥ n-1 — the
// adversary can then mute one process forever, and the checker finds the
// self-similar bivalent chain automatically.
package main

import (
	"context"
	"fmt"
	"log"

	"topocon"
)

func main() {
	ctx := context.Background()
	fmt.Println("at most f messages lost per round ([21], [22]):")
	fmt.Println()
	for _, c := range []struct{ n, f, horizon int }{
		{2, 0, 2}, {2, 1, 3},
		{3, 0, 2}, {3, 1, 3}, {3, 2, 2},
		{4, 1, 2},
	} {
		adv := topocon.LossBounded(c.n, c.f)
		// The n=4 space grows fast; a worker pool spreads the frontier
		// expansion, and the session is cancellable via ctx.
		an, err := topocon.NewAnalyzer(adv,
			topocon.WithMaxHorizon(c.horizon), topocon.WithParallelism(4))
		if err != nil {
			log.Fatal(err)
		}
		res, err := an.Check(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%d f=%d (threshold n-1=%d): %v", c.n, c.f, c.n-1, res.Verdict)
		switch res.Verdict {
		case topocon.VerdictSolvable:
			fmt.Printf(" — separation at horizon %d\n", res.SeparationHorizon)
		case topocon.VerdictImpossible:
			fmt.Printf("\n    proof: %v\n", res.Certificate)
		default:
			fmt.Println()
		}
	}
	fmt.Println()
	fmt.Println("the broadcast automaton explains the threshold: below n-1 losses no")
	fmt.Println("process can be silenced, above it the adversary traps a heard-set:")
	for _, f := range []int{1, 2} {
		adv := topocon.LossBounded(3, f)
		a := topocon.AnalyzeHeardSet(adv, 0)
		if a.CanTrap {
			fmt.Printf("  f=%d: process 1 trappable (stuck heard-set exists)\n", f)
		} else {
			fmt.Printf("  f=%d: process 1 broadcasts within %d rounds in every run\n",
				f, a.WorstBroadcastRounds)
		}
	}
}
