package topocon_test

import (
	"context"
	"fmt"

	"topocon"
)

// ExampleNewAnalyzer runs a cancellable analysis session with per-horizon
// progress reporting; the prefix space is refined incrementally instead of
// being re-enumerated at every horizon.
func ExampleNewAnalyzer() {
	an, err := topocon.NewAnalyzer(topocon.LossyLink2(),
		topocon.WithMaxHorizon(3),
		topocon.WithProgress(func(r topocon.HorizonReport) {
			fmt.Printf("horizon %d: %d runs, %d components\n", r.Horizon, r.Runs, r.Components)
		}))
	if err != nil {
		panic(err)
	}
	res, err := an.Check(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verdict, "at horizon", res.SeparationHorizon)
	// Output:
	// horizon 1: 8 runs, 4 components
	// solvable at horizon 1
}

// ExampleAnalyzeFinite applies Corollary 5.6 exactly to a finite message
// adversary given by ultimately-periodic words.
func ExampleAnalyzeFinite() {
	words := []topocon.GraphWord{
		topocon.RepeatWord(topocon.LeftGraph),
		topocon.RepeatWord(topocon.RightGraph),
	}
	analysis, err := topocon.AnalyzeFinite(words, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("solvable=%v components=%d\n", analysis.Solvable, len(analysis.Components))
	// Output: solvable=true components=4
}

// ExampleLassoDistanceZero decides d_min = 0 exactly on infinite runs: a
// hidden input flip under ->^ω is invisible to process 1 forever.
func ExampleLassoDistanceZero() {
	a, _ := topocon.NewLassoRun([]int{0, 0}, topocon.RepeatWord(topocon.RightGraph))
	b, _ := topocon.NewLassoRun([]int{0, 1}, topocon.RepeatWord(topocon.RightGraph))
	fmt.Println(topocon.LassoDistanceZero(a, b))
	// Output: true
}

// ExampleNewEventuallyStable checks the non-compact VSSC-style adversary:
// chaos until one stable root component persists for the window.
func ExampleNewEventuallyStable() {
	adv, err := topocon.NewEventuallyStable("demo",
		[]topocon.Graph{topocon.LeftGraph, topocon.BothGraph}, // chaos
		[]topocon.Graph{topocon.RightGraph},                   // stable root {1}
		2)
	if err != nil {
		panic(err)
	}
	res, err := topocon.CheckConsensus(adv, topocon.CheckOptions{MaxHorizon: 5})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v via broadcaster %d\n", res.Verdict, res.Broadcaster+1)
	// Output: solvable via broadcaster 1
}

// ExampleDecompose computes the ε-approximation components of
// Definition 6.2 for the reduced lossy link at horizon 1.
func ExampleDecompose() {
	s, err := topocon.BuildSpace(topocon.LossyLink2(), 2, 1, 0)
	if err != nil {
		panic(err)
	}
	d := topocon.Decompose(s)
	fmt.Printf("components=%d mixed=%d\n", len(d.Comps), len(d.MixedComponents()))
	// Output: components=4 mixed=0
}

// ExampleProveBivalent finds the machine-checked impossibility proof for
// an adversary containing the silent graph.
func ExampleProveBivalent() {
	adv, _ := topocon.NewOblivious("", []topocon.Graph{
		topocon.NeitherGraph, topocon.BothGraph,
	})
	_, found := topocon.ProveBivalent(adv, 2, 4)
	fmt.Println(found)
	// Output: true
}
